"""Integration tests: every example of the paper, end to end.

Each test class corresponds to one numbered example; together they verify
the full pipeline (model → chase → criteria → adornment) against the
paper's published traces.
"""

from repro.analysis import classify
from repro.chase import ChaseStatus, core_chase, explore_chase, run_chase
from repro.core import adn_exists, is_semi_acyclic, is_semi_stratified
from repro.criteria import is_stratified
from repro.data import (
    db_1,
    db_3,
    db_6,
    db_8,
    db_10,
    db_11,
    sigma_1,
    sigma_3,
    sigma_6,
    sigma_8,
    sigma_10,
    sigma_11,
)
from repro.homomorphism import (
    find_homomorphism,
    instance_maps_into,
    is_model,
    satisfies_all,
)
from repro.model import Atom, Constant, Variable, parse_facts

a = Constant("a")
x, y = Variable("x"), Variable("y")


class TestExample1And5:
    """Σ1: the terminating and the non-terminating sequences."""

    def test_terminating_sequence(self):
        result = run_chase(db_1(), sigma_1(), strategy="full_first", max_steps=10)
        assert result.successful
        assert result.instance == parse_facts('N("a") E("a","a")')
        labels = [s.trigger.dependency.label for s in result.steps]
        assert labels == ["r1", "r3"]

    def test_nonterminating_sequence_prefix(self):
        result = run_chase(
            db_1(), sigma_1(), strategy="existential_first", max_steps=13
        )
        assert result.status is ChaseStatus.EXCEEDED
        # r1 keeps firing on ever-new nulls: the divergence of Example 1.
        r1_firings = [s for s in result.steps if s.trigger.dependency.label == "r1"]
        assert len(r1_firings) >= 4


class TestExample2:
    """Homomorphisms h1 and h2 of the running example."""

    def test_h1(self):
        k1 = db_1()
        r1 = sigma_1()[0]
        h1 = find_homomorphism(r1.body, k1)
        assert h1 == {x: a}

    def test_h2_both_bodies(self):
        k2 = parse_facts('N("a") E("a", _1)')
        r2, r3 = sigma_1()[1], sigma_1()[2]
        assert find_homomorphism(r2.body, k2) is not None
        assert find_homomorphism(r3.body, k2) is not None


class TestExample3:
    """Universal vs non-universal models of (D, Σ3)."""

    def test_j1_universal_j2_not(self):
        sigma, db = sigma_3(), db_3()
        j1 = parse_facts('P("a","b") Q("c","d") E("a", _1) E(_2, "d")')
        j2 = parse_facts('P("a","b") Q("c","d") E("a", "d")')
        assert is_model(j1, db, sigma) and is_model(j2, db, sigma)
        # J1 maps into J2 (h(η1)=d, h(η2)=a) but not vice versa.
        assert instance_maps_into(j1, j2) is not None
        assert instance_maps_into(j2, j1) is None

    def test_chase_builds_universal_model(self):
        result = run_chase(db_3(), sigma_3(), max_steps=10)
        assert result.successful
        j1 = result.instance
        for other in (
            parse_facts('P("a","b") Q("c","d") E("a","d")'),
            parse_facts('P("a","b") Q("c","d") E("a","x") E("y","d")'),
        ):
            assert instance_maps_into(j1, other) is not None


class TestExample6And7:
    """Σ6 separates the chase variants; the core chase stays empty."""

    def test_standard_empty(self):
        result = run_chase(db_6(), sigma_6(), max_steps=10)
        assert result.successful and result.step_count == 0

    def test_semi_oblivious_one_step(self):
        result = run_chase(db_6(), sigma_6(), variant="semi_oblivious", max_steps=10)
        assert result.successful and result.step_count == 1

    def test_oblivious_infinite(self):
        result = run_chase(db_6(), sigma_6(), variant="oblivious", max_steps=25)
        assert result.status is ChaseStatus.EXCEEDED

    def test_core_chase_empty(self):
        result = core_chase(db_6(), sigma_6(), max_rounds=5)
        assert result.successful and result.instance == db_6()


class TestExample8:
    """Σ8 terminates in every sequence; its simulation never does."""

    def test_all_sequences_terminate(self):
        exploration = explore_chase(db_8(), sigma_8(), max_depth=12, max_states=20_000)
        assert exploration.all_terminating

    def test_chase_result_is_model(self):
        result = run_chase(db_8(), sigma_8(), max_steps=100)
        assert result.terminated
        if result.successful:
            assert satisfies_all(result.instance, sigma_8())


class TestExample9And10:
    """EGDs can create and destroy terminating sequences."""

    def test_tgds_of_sigma1_never_terminate(self):
        tgds_only = sigma_1().tgds_only()
        exploration = explore_chase(db_1(), tgds_only, max_depth=10, max_states=5_000)
        assert exploration.terminating_paths == 0

    def test_sigma1_with_egd_terminates(self):
        exploration = explore_chase(db_1(), sigma_1(), max_depth=10, max_states=5_000)
        assert exploration.some_terminating

    def test_tgds_of_sigma10_all_terminate(self):
        tgds_only = sigma_10().tgds_only()
        exploration = explore_chase(db_10(), tgds_only, max_depth=12, max_states=10_000)
        assert exploration.all_terminating

    def test_sigma10_with_egd_never_terminates(self):
        exploration = explore_chase(db_10(), sigma_10(), max_depth=9, max_states=10_000)
        assert exploration.terminating_paths == 0


class TestExample11:
    """Σ11: the r3-first strategy yields the 4-fact instance."""

    def test_terminating_sequence_and_result(self):
        result = run_chase(db_11(), sigma_11(), strategy="full_first", max_steps=50)
        assert result.successful
        facts = result.instance
        assert len(facts) == 4
        assert Atom("N", (a,)) in facts

    def test_membership_pattern(self):
        assert is_semi_stratified(sigma_11())
        assert not is_stratified(sigma_11())


class TestExamples12And13:
    def test_adn_on_sigma1(self):
        result = adn_exists(sigma_1())
        assert result.acyclic
        assert result.stats["size_adorned"] == 5

    def test_adn_on_sigma10(self):
        assert not adn_exists(sigma_10()).acyclic


class TestHeadlineClaims:
    """Section 1's motivation: current criteria all fail on Σ1."""

    def test_only_new_criteria_recognise_sigma1(self):
        report = classify(sigma_1())
        accepted = set(report.accepted_by)
        assert accepted == {"S-Str", "SAC"}

    def test_nothing_recognises_sigma10(self):
        report = classify(sigma_10())
        assert report.accepted_by == []

    def test_only_new_criteria_recognise_sigma11(self):
        report = classify(sigma_11())
        assert set(report.accepted_by) == {"S-Str", "SAC"}

    def test_simulation_blind_criteria_miss_sigma8(self):
        report = classify(sigma_8())
        accepted = set(report.accepted_by)
        # TGD-only criteria (through the simulation) all miss it.
        assert not accepted & {"WA", "SC", "SwA", "AC", "MFA", "MSA"}
        # Stratification-family and the paper's criteria catch it.
        assert {"Str", "S-Str", "SAC"} <= accepted
