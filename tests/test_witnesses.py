"""Empirical verification of every Table 1 witness claim."""

import pytest

from repro.analysis import check_claim, verify_cases
from repro.data import witness_cases


CASES = witness_cases()


@pytest.mark.parametrize(
    "case, claim",
    [(c, cl) for c in CASES for cl in c.claims],
    ids=[
        f"{c.name}-{cl.variant}-{cl.quantifier}-{'in' if cl.member else 'out'}"
        for c in CASES
        for cl in c.claims
    ],
)
def test_claim(case, claim):
    check = check_claim(case, claim)
    assert check.holds, f"{case.name}: {claim} — {check.evidence}"


def test_verify_cases_runs_everything():
    checks = verify_cases(CASES)
    assert len(checks) == sum(len(c.claims) for c in CASES)
    assert all(c.holds for c in checks)
