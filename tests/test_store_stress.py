"""Multi-process writer stress for the shared store (DESIGN.md §7).

N real writer processes hammer one cache directory at once.  What must
hold, per backend:

* no lost record — every acknowledged ``put`` from every writer is
  readable after all writers exit;
* no duplicated record — the store holds exactly one live row per key
  (last write wins on the contested key, not a pile-up);
* no ``database is locked`` escaping ``busy_timeout`` — every writer
  exits 0 with a clean stderr;
* engine-level parity — a corpus sharded across concurrent processes
  into one cache dir warms a rerun exactly as well as the single-writer
  baseline does.

Marked ``stress`` and excluded from tier-1 (see pytest.ini); the CI
``store-smoke`` job runs it explicitly with ``-m stress``.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro.batch import ResultCache

pytestmark = pytest.mark.stress

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

N_WRITERS = 6
KEYS_PER_WRITER = 40


@pytest.fixture(params=["sqlite", "jsonl"])
def backend(request):
    return request.param


STRESS_WRITER = textwrap.dedent(
    """
    import sys
    sys.path.insert(0, sys.argv[1])
    from repro.batch.cache import ResultCache
    cache_dir, backend, writer, keys = sys.argv[2:6]
    w = int(writer)
    cache = ResultCache(cache_dir, backend=backend)
    for i in range(int(keys)):
        cache.put("w%02d-k%04d" % (w, i), "params", {"w": w, "i": i})
        # Every writer also fights over one shared key: last write wins,
        # never an error, never a duplicate row.
        cache.put("contested", "params", {"w": w, "i": i})
    cache.close()
    """
)


class TestWriterStorm:
    def test_no_lost_no_duplicate_no_lock_escape(self, tmp_path, backend):
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", STRESS_WRITER, SRC, str(tmp_path),
                 backend, str(w), str(KEYS_PER_WRITER)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for w in range(N_WRITERS)
        ]
        for w, proc in enumerate(procs):
            _, err = proc.communicate(timeout=120)
            text = err.decode(errors="replace")
            assert proc.returncode == 0, f"writer {w} failed:\n{text}"
            assert "database is locked" not in text, (
                f"a lock escaped busy_timeout in writer {w}:\n{text}"
            )
        cache = ResultCache(tmp_path, backend=backend)
        # No lost, no duplicated: exactly one live row per distinct key.
        assert len(cache) == N_WRITERS * KEYS_PER_WRITER + 1
        assert cache.stats.corrupted == 0
        for w in range(N_WRITERS):
            for i in range(KEYS_PER_WRITER):
                assert cache.get(f"w{w:02d}-k{i:04d}", "params") == {
                    "w": w, "i": i,
                }, f"writer {w} lost record {i}"
        # The contested key holds some writer's final write, intact.
        final = cache.get("contested", "params")
        assert final is not None
        assert final["i"] == KEYS_PER_WRITER - 1
        if backend == "sqlite":
            assert cache._backend.integrity() == "ok"


ENGINE_SHARD = textwrap.dedent(
    """
    import json, sys
    sys.path.insert(0, sys.argv[1])
    from repro.batch import BatchConfig, evaluate_corpus
    from repro.generators import generate_corpus
    corpus = generate_corpus(scale=0.1, tests_scale=0.1, max_size=15)
    shard = None
    if sys.argv[4] != "full":
        shard = (int(sys.argv[4]), int(sys.argv[5]))
    report = evaluate_corpus(
        corpus,
        BatchConfig(cache_dir=sys.argv[2], chase_steps=300,
                    store=sys.argv[3], shard=shard),
    )
    assert report.complete
    print(json.dumps({
        "total": len(corpus),
        "computed": report.computed,
        "hits": report.hits,
        "deduplicated": report.deduplicated,
    }))
    """
)


def _run_engine(cache_dir, backend, *shard) -> dict:
    env = {**os.environ, "PYTHONHASHSEED": "0"}
    args = [str(s) for s in (shard or ("full",))]
    done = subprocess.run(
        [sys.executable, "-c", ENGINE_SHARD, SRC, str(cache_dir), backend,
         *args],
        capture_output=True,
        env=env,
        timeout=600,
    )
    assert done.returncode == 0, done.stderr.decode(errors="replace")
    assert "database is locked" not in done.stderr.decode(errors="replace")
    return json.loads(done.stdout)


class TestConcurrentSharding:
    def test_warm_rerun_matches_single_writer_baseline(self, tmp_path, backend):
        n = 3
        shared = tmp_path / "shared"
        solo = tmp_path / "solo"
        env = {**os.environ, "PYTHONHASHSEED": "0"}
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", ENGINE_SHARD, SRC, str(shared),
                 backend, str(i), str(n)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
            )
            for i in range(n)
        ]
        for i, proc in enumerate(procs):
            _, err = proc.communicate(timeout=600)
            text = err.decode(errors="replace")
            assert proc.returncode == 0, f"shard {i} failed:\n{text}"
            assert "database is locked" not in text
        # Single-writer baseline over the same corpus, separate dir.
        _run_engine(solo, backend)
        warm_solo = _run_engine(solo, backend)
        # The concurrently populated cache must warm a full rerun exactly
        # as well as the single-writer one: nothing recomputed, identical
        # hit/dedup split.
        warm_shared = _run_engine(shared, backend)
        assert warm_shared["computed"] == 0
        assert warm_shared == warm_solo
