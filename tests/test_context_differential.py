"""Differential suite for the shared analysis substrate (DESIGN.md §6).

The acceptance bar of the refactor: for every program, the portfolio's
three artifact-sharing backends — ``shared`` (one memoized
:class:`~repro.analysis.context.AnalysisContext` across criteria),
``standalone`` (per-criterion rebuilds over a shared firing-decision
cache: the pre-context reference path) and ``isolated`` (no sharing at
all) — must produce **byte-identical** reports modulo timings.  Plus
unit coverage for the context itself: memoization, single-flight
thread-safety, and the determinism gate that keeps budget-truncated
artifacts out of the store.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import AnalysisContext, classify
from repro.analysis.classify import BACKENDS
from repro.budget import Budget, budget_scope
from repro.data import all_paper_sets
from repro.firing.relations import DecisionCache
from repro.generators import generate_corpus, random_dependency_set

#: Random-program family shared with the metamorphic suite.
RANDOM_SEEDS = range(0, 40)


def _comparable(report):
    """Everything in a report except wall-clock timings."""
    return [
        (
            name,
            r.accepted,
            r.exact,
            r.guarantee,
            r.exhausted,
            {k: v for k, v in r.details.items() if k != "elapsed_ms"},
        )
        for name, r in report.results.items()
    ]


class TestBackendsAgree:
    @pytest.mark.parametrize("seed", RANDOM_SEEDS)
    def test_random_programs(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        reports = {b: classify(sigma, backend=b) for b in BACKENDS}
        reference = _comparable(reports["standalone"])
        for backend in BACKENDS:
            assert _comparable(reports[backend]) == reference, (
                f"backend {backend!r} diverged from the reference on "
                f"seed {seed}"
            )

    def test_paper_sets(self):
        for name, sigma in all_paper_sets().items():
            reports = {b: classify(sigma, backend=b) for b in BACKENDS}
            reference = _comparable(reports["standalone"])
            for backend in BACKENDS:
                assert _comparable(reports[backend]) == reference, (
                    f"backend {backend!r} diverged on {name}"
                )

    def test_corpus_programs(self):
        corpus = generate_corpus(scale=0.02, tests_scale=0.04, max_size=12)
        for ont in corpus[:12]:
            shared = classify(ont.sigma, backend="shared")
            standalone = classify(ont.sigma, backend="standalone")
            assert _comparable(shared) == _comparable(standalone), ont.name

    @pytest.mark.parametrize("seed", [0, 5, 36, 43])
    def test_parallel_shared_context_agrees(self, seed):
        # One context shared by four worker threads must not change a
        # single verdict relative to the sequential standalone path.
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        sequential = classify(sigma, backend="standalone")
        parallel = classify(sigma, jobs=4, backend="shared")
        assert _comparable(parallel) == _comparable(sequential)


class TestAnalysisContext:
    def test_artifacts_are_memoized(self):
        sigma = random_dependency_set(3, n_deps=3)
        ctx = AnalysisContext(sigma)
        assert ctx.affected_positions() is ctx.affected_positions()
        assert ctx.dependency_graph() is ctx.dependency_graph()
        assert ctx.chase_graph("oblivious")[0] is ctx.chase_graph("oblivious")[0]
        stats = ctx.stats()["artifacts"]
        assert stats["hits"] == 3 and stats["misses"] == 3

    def test_variants_are_distinct_artifacts(self):
        sigma = random_dependency_set(3, n_deps=3)
        ctx = AnalysisContext(sigma)
        standard, _ = ctx.chase_graph("standard")
        oblivious, _ = ctx.chase_graph("oblivious")
        assert standard is not oblivious

    def test_critical_instance_returns_fresh_copies(self):
        # MFA/MSA mutate their instance in place; the memoized template
        # must never leak.
        sigma = random_dependency_set(7, n_deps=3, egd_fraction=0.0)
        ctx = AnalysisContext(sigma)
        first = ctx.critical_instance()
        second = ctx.critical_instance()
        assert first is not second
        assert first.facts() == second.facts()

    def test_context_rejects_foreign_sigma(self):
        from repro.criteria import WeakAcyclicity

        ctx = AnalysisContext(random_dependency_set(1, n_deps=3))
        with pytest.raises(ValueError):
            WeakAcyclicity().check(random_dependency_set(2, n_deps=3), context=ctx)

    def test_blown_budget_vetoes_memoization(self):
        sigma = random_dependency_set(11, n_deps=4, egd_fraction=0.3)
        ctx = AnalysisContext(sigma)
        budget = Budget(max_steps=1)
        budget.charge(2)  # blow it immediately
        with budget_scope(budget):
            ctx.affected_positions()
        assert ctx.stats()["artifacts"]["entries"] == 0
        assert ctx.uncached_builds == 1
        # A clean rebuild afterwards does enter the store.
        ctx.affected_positions()
        assert ctx.stats()["artifacts"]["entries"] == 1

    def test_single_flight_builds_once_under_contention(self):
        sigma = random_dependency_set(5, n_deps=3)
        ctx = AnalysisContext(sigma)
        builds = []
        gate = threading.Event()
        original = ctx._get

        def slow_get(key, build, deterministic=None):
            def counted():
                gate.wait(5)
                builds.append(key)
                return build()

            return original(key, counted, deterministic)

        ctx._get = slow_get
        threads = [
            threading.Thread(target=ctx.affected_positions) for _ in range(8)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join()
        assert builds == [("affected",)]
        assert ctx.stats()["artifacts"]["hits"] == 7


class TestDecisionCache:
    def test_single_flight_probe_runs_once(self):
        cache = DecisionCache()
        calls = []
        barrier = threading.Barrier(4)
        results = []

        def compute():
            calls.append(1)
            return ("decision", True)

        def worker():
            barrier.wait()
            results.append(cache.decide(("edge",), compute))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert results == ["decision"] * 4
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 3

    def test_non_deterministic_decision_not_cached(self):
        cache = DecisionCache()
        assert cache.decide(("e",), lambda: ("truncated", False)) == "truncated"
        assert len(cache) == 0
        assert cache.decide(("e",), lambda: ("clean", True)) == "clean"
        assert len(cache) == 1

    def test_seed_does_not_overwrite(self):
        cache = DecisionCache()
        cache.seed(("e",), "first")
        cache.seed(("e",), "second")
        assert cache.decide(("e",), lambda: ("computed", True)) == "first"
        assert cache.stats()["preloaded"] == 1
