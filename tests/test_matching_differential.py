"""Differential tests: every matching backend vs the naive reference.

The indexed engine (``repro.matching.engine``), the plan-compiled engine
(``repro.matching.plans``) and the columnar backend (the same plans
executing as generated int loops over a ``ColumnarInstance``) must all be
*observationally identical* to the naive reference
(``repro.matching.naive``):

* all four enumerate exactly the same homomorphism sets (order may
  differ);
* a chase run driven by any backend produces the identical
  ``ChaseResult`` — status, step count, and final instance — for all four
  variants and all strategies, because the runner pushes each discovery
  batch in a canonical order;
* the semi-naive saturation loop derives exactly what the seed's naive
  full-re-enumeration fixpoint derived, round for round;
* the runner's semi-naive discovery invariant holds: at drain time a full
  re-sweep (the seed's old exhaustiveness guarantee, now demoted to a debug
  oracle) finds no applicable trigger.

Programs come from ``generators.random_deps`` (unstructured stressors) and
``generators.corpus`` (ontology-shaped); the random-program tests cover
well over 200 seeds.
"""

from __future__ import annotations

import random

import pytest

from repro.chase.runner import ChaseRunner, run_chase
from repro.chase.skolem import SkolemTerm, critical_instance, saturate, skolemise
from repro.generators.corpus import generate_corpus
from repro.generators.databases import seed_database
from repro.generators.random_deps import random_dependency_set
from repro.matching import engine as indexed_engine
from repro.matching import naive as naive_engine
from repro.matching import plans as planned_engine
from repro.matching import using_backend
from repro.model.atoms import Atom
from repro.model.columnar import ColumnarInstance
from repro.model.instances import Instance
from repro.model.terms import Constant, Null

VARIANTS = ("standard", "oblivious", "semi_oblivious")


def random_instance(seed, sigma, n_facts=14, n_consts=4, n_nulls=2):
    """A reproducible random instance over Σ's schema."""
    rng = random.Random(seed)
    pool = [Constant(f"c{i}") for i in range(n_consts)]
    pool += [Null(900 + i) for i in range(n_nulls)]
    preds = sorted(sigma.predicates().items())
    inst = Instance()
    for _ in range(n_facts):
        if not preds:
            break
        p, ar = rng.choice(preds)
        inst.add(Atom(p, [rng.choice(pool) for _ in range(ar)]))
    return inst


def hom_key(h):
    """Order-insensitive identity of one homomorphism."""
    return frozenset((repr(k), repr(v)) for k, v in h.items())


def hom_set(matcher, body, target, **kw):
    return {hom_key(h) for h in matcher.match(body, target, limit=None, **kw)}


def assert_same_result(r1, r2, context=""):
    assert r1.status is r2.status, context
    assert r1.step_count == r2.step_count, context
    assert (r1.instance is None) == (r2.instance is None), context
    if r1.instance is not None:
        assert r1.instance.facts() == r2.instance.facts(), context


# -- homomorphism-set equality ----------------------------------------------


def test_homomorphism_sets_identical_on_random_programs():
    """≥200 seeded random programs: identical enumeration, body by body."""
    for seed in range(220):
        sigma = random_dependency_set(seed, n_deps=6)
        inst = random_instance(seed * 7 + 1, sigma)
        col = ColumnarInstance(inst)
        for dep in sigma:
            want = hom_set(naive_engine, dep.body, inst)
            assert hom_set(indexed_engine, dep.body, inst) == want, (
                f"seed={seed} dep={dep}"
            )
            assert hom_set(planned_engine, dep.body, inst) == want, (
                f"seed={seed} dep={dep} (planned)"
            )
            assert hom_set(planned_engine, dep.body, col) == want, (
                f"seed={seed} dep={dep} (columnar)"
            )


def test_homomorphism_sets_identical_with_seeds_and_frozen_nulls():
    for seed in range(60):
        sigma = random_dependency_set(seed, n_deps=5)
        inst = random_instance(seed * 11 + 5, sigma, n_nulls=3)
        for dep in sigma:
            # Anchor the first body atom onto every compatible fact, the way
            # semi-naive discovery does, and compare extension sets.
            atom = dep.body[0]
            for fact in inst.with_predicate(atom.predicate):
                partial = indexed_engine.seed_mapping(atom, fact)
                if partial is None:
                    continue
                for frozen in (False, True):
                    want = hom_set(
                        naive_engine, dep.body, inst, seed=partial,
                        frozen_nulls=frozen,
                    )
                    assert hom_set(
                        indexed_engine, dep.body, inst, seed=partial,
                        frozen_nulls=frozen,
                    ) == want, f"seed={seed} dep={dep} fact={fact} frozen={frozen}"
                    assert hom_set(
                        planned_engine, dep.body, inst, seed=partial,
                        frozen_nulls=frozen,
                    ) == want, (
                        f"seed={seed} dep={dep} fact={fact} "
                        f"frozen={frozen} (planned)"
                    )
                    assert hom_set(
                        planned_engine, dep.body, ColumnarInstance(inst),
                        seed=partial, frozen_nulls=frozen,
                    ) == want, (
                        f"seed={seed} dep={dep} fact={fact} "
                        f"frozen={frozen} (columnar)"
                    )


def test_homomorphism_sets_identical_on_corpus_bodies():
    corpus = generate_corpus(tests_scale=0.03)
    assert corpus
    for ont in corpus:
        db = seed_database(ont.sigma)
        col = ColumnarInstance(db)
        for dep in list(ont.sigma)[:15]:
            want = hom_set(naive_engine, dep.body, db)
            assert hom_set(indexed_engine, dep.body, db) == want, (
                f"{ont.name} dep={dep}"
            )
            assert hom_set(planned_engine, dep.body, db) == want, (
                f"{ont.name} dep={dep} (planned)"
            )
            assert hom_set(planned_engine, dep.body, col) == want, (
                f"{ont.name} dep={dep} (columnar)"
            )


def test_non_instance_targets_and_empty_sources():
    """Plain atom collections go through the ad-hoc index; empty sources
    yield exactly the seed mapping."""
    a, b = Constant("a"), Constant("b")
    facts = [Atom("E", (a, b)), Atom("E", (b, a)), Atom("N", (a,))]
    sigma = random_dependency_set(3, n_deps=4)
    for dep in sigma:
        want = hom_set(naive_engine, dep.body, facts)
        assert hom_set(indexed_engine, dep.body, facts) == want
        assert hom_set(planned_engine, dep.body, facts) == want
    assert list(indexed_engine.match([], facts, seed={a: a})) == [{a: a}]
    assert list(naive_engine.match([], facts, seed={a: a})) == [{a: a}]
    assert list(planned_engine.match([], facts, seed={a: a})) == [{a: a}]


# -- chase differential -------------------------------------------------------


def test_chase_differential_on_random_programs():
    """≥200 seeded random programs × all variants × two strategies."""
    for seed in range(200):
        sigma = random_dependency_set(seed, n_deps=6)
        db = random_instance(seed * 13 + 3, sigma, n_facts=8, n_nulls=0)
        for variant in VARIANTS:
            for strategy in ("fifo", "full_first"):
                r_nai = run_chase(
                    db, sigma, variant=variant, strategy=strategy,
                    max_steps=50, engine="naive",
                )
                for engine in ("indexed", "planned", "columnar"):
                    r_eng = run_chase(
                        db, sigma, variant=variant, strategy=strategy,
                        max_steps=50, engine=engine,
                    )
                    assert_same_result(
                        r_eng, r_nai,
                        f"seed={seed} {variant}/{strategy} ({engine})",
                    )


def test_chase_differential_all_strategies():
    """The canonical batch order makes every strategy backend-agnostic."""
    for seed in range(25):
        sigma = random_dependency_set(seed, n_deps=6)
        db = random_instance(seed * 17 + 9, sigma, n_facts=8, n_nulls=0)
        for variant in VARIANTS:
            for strategy in ("fifo", "lifo", "full_first", "egd_first",
                             "existential_first"):
                r_nai = run_chase(
                    db, sigma, variant=variant, strategy=strategy,
                    max_steps=40, engine="naive",
                )
                for engine in ("indexed", "planned", "columnar"):
                    r_eng = run_chase(
                        db, sigma, variant=variant, strategy=strategy,
                        max_steps=40, engine=engine,
                    )
                    assert_same_result(
                        r_eng, r_nai,
                        f"seed={seed} {variant}/{strategy} ({engine})",
                    )


def test_chase_differential_on_corpus():
    corpus = generate_corpus(tests_scale=0.03)
    assert corpus
    for ont in corpus:
        db = seed_database(ont.sigma)
        for variant in VARIANTS:
            r_nai = run_chase(
                db, ont.sigma, variant=variant, strategy="full_first",
                max_steps=150, engine="naive",
            )
            for engine in ("indexed", "planned", "columnar"):
                r_eng = run_chase(
                    db, ont.sigma, variant=variant, strategy="full_first",
                    max_steps=150, engine=engine,
                )
                assert_same_result(
                    r_eng, r_nai, f"{ont.name} {variant} ({engine})"
                )


def test_semi_naive_discovery_is_exhaustive():
    """The debug oracle re-runs the seed's full drain-time sweep and
    asserts semi-naive discovery missed nothing, on every terminating run."""
    for seed in range(40):
        sigma = random_dependency_set(seed, n_deps=5)
        db = random_instance(seed * 3 + 11, sigma, n_facts=8, n_nulls=0)
        for variant in VARIANTS:
            ChaseRunner(
                db, sigma, variant, "fifo", max_steps=80,
                check_exhaustive=True,
            ).run()


# -- saturation differential --------------------------------------------------


def reference_naive_saturate(database, rules, max_facts, max_rounds):
    """The seed's saturation loop: full re-enumeration every round, via the
    naive matcher.  Returns (facts, saturated, alarmed, rounds)."""
    instance = database.copy()
    rules = list(rules)
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        new_facts = []
        for rule in rules:
            for h in naive_engine.match(rule.source.body, instance, limit=None):
                for fact in rule.head_facts(h):
                    if fact in instance:
                        continue
                    for t in fact.args:
                        if isinstance(t, SkolemTerm) and t.is_cyclic:
                            return instance.facts(), False, True, rounds
                    new_facts.append(fact)
        if instance.add_all(new_facts) == 0:
            return instance.facts(), True, False, rounds
        if len(instance) > max_facts:
            return instance.facts(), False, False, rounds
    return instance.facts(), False, False, rounds


def test_saturation_differential_on_random_programs():
    checked = 0
    for seed in range(120):
        sigma = random_dependency_set(seed, n_deps=6, egd_fraction=0.0)
        if sigma.egds or not len(sigma.tgds):
            continue
        rules = skolemise(sigma, "semi_oblivious")
        base = critical_instance(sigma)
        result = saturate(base, rules, max_facts=2_000, max_rounds=30)
        ref = reference_naive_saturate(base, rules, max_facts=2_000, max_rounds=30)
        got = (result.instance.facts(), result.saturated, result.alarmed,
               result.rounds)
        assert got == ref, f"seed={seed}"
        checked += 1
    assert checked >= 80  # the generator rarely emits empty TGD sets


def reference_naive_msa(sigma, max_rounds=2_000):
    """The seed's MSA loop: full re-enumeration every round via the naive
    matcher, same summary constants and contribution-edge recording.
    Returns (accepted, exact) exactly like ``is_msa``."""
    import networkx as nx

    from repro.chase.skolem import critical_instance, skolemise
    from repro.model.terms import Constant

    rules = skolemise(sigma, "semi_oblivious")
    instance = critical_instance(sigma)
    summary_const = {
        functor: Constant(f"@{functor}")
        for rule in rules
        for _, functor, _ in rule.functors
    }
    contributes = nx.DiGraph()
    contributes.add_nodes_from(summary_const)
    inverse = {c: f for f, c in summary_const.items()}
    for _ in range(max_rounds):
        new_facts = []
        for rule in rules:
            for h in naive_engine.match(rule.source.body, instance, limit=None):
                mapping = {v: h[v] for v in rule.source.body_variables()}
                used = {
                    inverse[t]
                    for t in mapping.values()
                    if isinstance(t, Constant) and t in inverse
                }
                for z, functor, _ in rule.functors:
                    mapping[z] = summary_const[functor]
                    for g in used:
                        contributes.add_edge(g, functor)
                for atom in rule.source.head:
                    fact = atom.apply(mapping)
                    if fact not in instance:
                        new_facts.append(fact)
        if instance.add_all(new_facts) == 0:
            break
    else:
        return False, False
    try:
        nx.find_cycle(contributes)
        return False, True
    except nx.NetworkXNoCycle:
        return True, True


def test_msa_differential_on_random_programs():
    """The semi-naive MSA loop (delta rounds + indexed matcher) must agree
    with the seed's full-re-enumeration naive loop, program for program —
    the contribution edges recorded from delta homomorphisms alone must
    produce the same cyclicity verdict."""
    from repro.criteria.mfa import is_msa

    checked = 0
    for seed in range(120):
        sigma = random_dependency_set(seed, n_deps=6, egd_fraction=0.0)
        if sigma.egds or not len(sigma.tgds):
            continue
        assert is_msa(sigma) == reference_naive_msa(sigma), f"seed={seed}"
        checked += 1
    assert checked >= 80


def test_saturation_differential_oblivious_variant():
    for seed in range(40):
        sigma = random_dependency_set(seed, n_deps=5, egd_fraction=0.0)
        if sigma.egds or not len(sigma.tgds):
            continue
        rules = skolemise(sigma, "oblivious")
        base = critical_instance(sigma)
        result = saturate(base, rules, max_facts=1_500, max_rounds=25)
        ref = reference_naive_saturate(base, rules, max_facts=1_500, max_rounds=25)
        assert (result.instance.facts(), result.saturated, result.alarmed,
                result.rounds) == ref, f"seed={seed}"


# -- columnar backend ---------------------------------------------------------


def test_columnar_saturation_differential():
    """Saturation under the columnar backend (columnar working instance,
    row-handle delta rounds) agrees with the naive full-re-enumeration
    reference round for round."""
    checked = 0
    for seed in range(60):
        sigma = random_dependency_set(seed, n_deps=6, egd_fraction=0.0)
        if sigma.egds or not len(sigma.tgds):
            continue
        rules = skolemise(sigma, "semi_oblivious")
        base = critical_instance(sigma)
        with using_backend("columnar"):
            result = saturate(base, rules, max_facts=2_000, max_rounds=30)
        assert isinstance(result.instance, ColumnarInstance)
        ref = reference_naive_saturate(base, rules, max_facts=2_000, max_rounds=30)
        got = (result.instance.facts(), result.saturated, result.alarmed,
               result.rounds)
        assert got == ref, f"seed={seed}"
        checked += 1
    assert checked >= 40


def test_columnar_ambient_backend_chase():
    """``using_backend("columnar")`` (no explicit engine=) converts the
    runner's working instance and still drives byte-identical decisions."""
    for seed in range(30):
        sigma = random_dependency_set(seed, n_deps=6)
        db = random_instance(seed * 13 + 3, sigma, n_facts=8, n_nulls=0)
        for variant in VARIANTS:
            r_nai = run_chase(
                db, sigma, variant=variant, strategy="fifo",
                max_steps=50, engine="naive",
            )
            with using_backend("columnar"):
                runner = ChaseRunner(db, sigma, variant, "fifo", max_steps=50)
                assert isinstance(runner.instance, ColumnarInstance)
                r_col = runner.run()
            assert_same_result(r_col, r_nai, f"seed={seed} {variant} (columnar)")


def test_columnar_chase_exhaustive_oracle():
    """The drain-time exhaustiveness oracle holds under columnar
    semi-naive discovery (row handles seed exactly the full sweep)."""
    for seed in range(20):
        sigma = random_dependency_set(seed, n_deps=5)
        db = random_instance(seed * 3 + 11, sigma, n_facts=8, n_nulls=0)
        for variant in VARIANTS:
            ChaseRunner(
                db, sigma, variant, "fifo", max_steps=80,
                engine="columnar", check_exhaustive=True,
            ).run()
