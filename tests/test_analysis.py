"""Analysis facade tests: classify(), evaluation pipeline, hierarchy checks."""

from repro.analysis import (
    ClassificationReport,
    ClassifyConfig,
    chase_ground_truth,
    classify,
    evaluate_ontology,
    render_table1,
    render_table2,
    summarise,
    verify_cases,
)
from repro.criteria.base import Guarantee
from repro.data import sigma_1, sigma_3, sigma_10, witness_cases
from repro.generators import generate_corpus, random_dependency_set


class TestClassify:
    def test_full_portfolio(self):
        report = classify(sigma_1())
        assert isinstance(report, ClassificationReport)
        assert set(report.results) >= {"WA", "SC", "S-Str", "SAC"}
        assert report.guarantees_exists
        assert not report.guarantees_all  # only CT∃ criteria accept Σ1

    def test_guarantees_all_when_ct_all_criterion_accepts(self):
        report = classify(sigma_3())
        assert report.guarantees_all

    def test_nothing_applies(self):
        report = classify(sigma_10())
        assert not report.guarantees_exists
        assert report.accepted_by == []

    def test_selected_criteria(self):
        report = classify(sigma_1(), criteria=["WA", "SAC"])
        assert list(report.results) == ["WA", "SAC"]

    def test_stop_on_first(self):
        report = classify(sigma_3(), stop_on_first=True)
        assert len(report.results) == 1  # WA accepts immediately

    def test_render(self):
        text = str(classify(sigma_1(), criteria=["WA", "SAC"]))
        assert "SAC" in text and "⇒" in text


class TestParallelPortfolio:
    """The jobs/budgets/short-circuit portfolio added in PR 2."""

    def test_jobs_report_verdict_identical(self):
        # The full parallel portfolio must agree with the sequential path
        # criterion by criterion, not just on the headline.
        for seed in (0, 1, 5, 36, 43):  # includes the historical hangs
            sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
            seq = classify(sigma)
            par = classify(sigma, jobs=4)
            assert list(par.results) == list(seq.results)
            for name in seq.results:
                assert par.results[name].accepted == seq.results[name].accepted
                assert par.results[name].exact == seq.results[name].exact
            assert par.verdict == seq.verdict

    def test_stop_on_first_parallel(self):
        report = classify(sigma_3(), stop_on_first=True, jobs=4)
        accepted = [r for r in report.results.values() if r.accepted]
        assert accepted

    def test_short_circuit_preserves_headline(self):
        for seed in range(8):
            sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
            full = classify(sigma)
            sc = classify(sigma, jobs=2, short_circuit=True)
            assert sc.verdict == full.verdict, seed

    def test_short_circuited_criteria_are_marked_not_exhausted(self):
        report = classify(sigma_3(), jobs=2, short_circuit=True)
        skipped = [r for r in report.results.values() if r.skipped]
        assert skipped  # WA accepts CT∀ immediately; the rest are spared
        assert not report.any_exhausted
        assert "short-circuited" in str(report)

    def test_budget_exhaustion_is_flagged(self):
        sigma = random_dependency_set(1, n_deps=3, egd_fraction=0.3)
        report = classify(sigma, budget_steps=20)
        assert report.any_exhausted
        blown = [r for r in report.results.values() if r.exhausted is not None]
        assert blown
        assert all(not r.exact for r in blown)

    def test_config_object(self):
        config = ClassifyConfig(criteria=["WA", "SC"], jobs=2)
        report = classify(sigma_3(), config=config)
        assert list(report.results) == ["WA", "SC"]


class TestEvaluationPipeline:
    def setup_method(self):
        self.corpus = generate_corpus(scale=0.03, tests_scale=0.05)

    def test_evaluate_ontology_fields(self):
        ev = evaluate_ontology(self.corpus[0], chase_steps=600)
        assert ev.size == len(self.corpus[0].sigma)
        assert ev.adorned_size >= ev.size  # bridges guarantee growth
        assert ev.ratio >= 1.0

    def test_summarise_and_render(self):
        evs = [evaluate_ontology(o, chase_steps=400) for o in self.corpus[:4]]
        summaries = summarise(evs)
        assert sum(s.tests for s in summaries.values()) == 4
        table = render_table2(summaries)
        assert "A+NT" in table and "FN" in table

    def test_chase_ground_truth_consistency(self):
        halted, strategy = chase_ground_truth(sigma_1(), max_steps=200)
        assert halted and strategy == "full_first"
        # Σ10 over the seed database FAILS immediately (the EGD equates two
        # distinct seed constants) — a failing sequence is finite, so it
        # counts as halted, exactly like the paper's 24h-timeout criterion.
        halted, _ = chase_ground_truth(sigma_10(), max_steps=200)
        assert halted

    def test_chase_ground_truth_divergence(self):
        from repro.model import parse_dependencies

        diverging = parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y) & B(y)
            r2: B(x) -> A(x)
            """
        )
        halted, strategy = chase_ground_truth(diverging, max_steps=300)
        assert not halted and strategy is None


class TestHierarchyFacade:
    def test_render_table1(self):
        checks = verify_cases(witness_cases()[:1])
        text = render_table1(checks)
        assert "Table 1" in text
        assert "sigma_1" in text
