"""Regression tests for Instance's public accessors, indexes and delta log.

The seed returned the *live* internal sets from ``with_predicate`` /
``with_term``; a caller iterating one of them while the chase mutated the
instance hit "set changed size during iteration" (or silently saw a moving
target).  They now return snapshots.  The position index and the delta log
added for the matching engine are covered here too.
"""

import pytest

from repro.model.atoms import Atom
from repro.model.instances import Instance
from repro.model.terms import Constant, Null

a, b, c = Constant("a"), Constant("b"), Constant("c")


def fresh_instance():
    return Instance([Atom("E", (a, b)), Atom("E", (b, c)), Atom("N", (a,))])


class TestSnapshotViews:
    def test_with_predicate_safe_to_iterate_while_mutating(self):
        inst = fresh_instance()
        seen = 0
        for i, fact in enumerate(inst.with_predicate("E")):
            # The seed raised RuntimeError("set changed size ...") here.
            inst.add(Atom("E", (c, Constant(f"x{i}"))))
            seen += 1
        assert seen == 2
        assert len(inst.with_predicate("E")) == 4

    def test_with_term_safe_to_iterate_while_mutating(self):
        inst = fresh_instance()
        for fact in inst.with_term(b):
            inst.discard(fact)
        assert inst.with_term(b) == frozenset()

    def test_views_are_snapshots_not_live(self):
        inst = fresh_instance()
        before = inst.with_predicate("E")
        inst.add(Atom("E", (c, a)))
        assert len(before) == 2  # unchanged: a copy, not the internal set
        assert len(inst.with_predicate("E")) == 3

    def test_views_are_not_mutable_aliases(self):
        inst = fresh_instance()
        view = inst.with_predicate("N")
        with pytest.raises(AttributeError):
            view.add(Atom("N", (b,)))  # frozenset: no mutators
        assert inst.with_predicate("N") == {Atom("N", (a,))}

    def test_empty_buckets(self):
        inst = fresh_instance()
        assert inst.with_predicate("missing") == frozenset()
        assert inst.with_term(Constant("zzz")) == frozenset()


class TestPositionIndex:
    def test_buckets_follow_adds_and_discards(self):
        inst = fresh_instance()
        assert inst._pos_bucket("E", 0, a) == {Atom("E", (a, b))}
        assert inst._pos_bucket("E", 1, c) == {Atom("E", (b, c))}
        inst.discard(Atom("E", (a, b)))
        assert not inst._pos_bucket("E", 0, a)
        inst.add(Atom("E", (a, c)))
        assert inst._pos_bucket("E", 1, c) == {Atom("E", (b, c)), Atom("E", (a, c))}

    def test_buckets_follow_merges(self):
        inst = Instance([Atom("E", (a, Null(1)))])
        inst.merge_terms(Null(1), a)
        assert inst._pos_bucket("E", 1, Null(1)) == frozenset()
        assert inst._pos_bucket("E", 1, a) == {Atom("E", (a, a))}

    def test_repeated_term_positions(self):
        inst = Instance([Atom("E", (a, a))])
        assert inst._pos_bucket("E", 0, a) == {Atom("E", (a, a))}
        assert inst._pos_bucket("E", 1, a) == {Atom("E", (a, a))}
        inst.discard(Atom("E", (a, a)))
        assert not inst._pos_bucket("E", 0, a)
        assert not inst._pos_bucket("E", 1, a)


class TestDeltaLog:
    def test_adds_enter_the_log_in_order(self):
        inst = Instance()
        t0 = inst.tick
        inst.add(Atom("N", (a,)))
        inst.add(Atom("N", (b,)))
        inst.add(Atom("N", (a,)))  # duplicate: not logged
        assert list(inst.added_since(t0)) == [Atom("N", (a,)), Atom("N", (b,))]
        assert inst.tick == t0 + 2

    def test_ticks_are_consumable_incrementally(self):
        inst = Instance()
        inst.add(Atom("N", (a,)))
        t1 = inst.tick
        inst.add(Atom("N", (b,)))
        assert list(inst.added_since(t1)) == [Atom("N", (b,))]
        assert list(inst.added_since(inst.tick)) == []

    def test_merge_rewrites_reenter_the_log(self):
        inst = Instance([Atom("E", (a, Null(1))), Atom("N", (Null(1),))])
        t = inst.tick
        inst.merge_terms(Null(1), a)
        assert set(inst.added_since(t)) == {Atom("E", (a, a)), Atom("N", (a,))}

    def test_merge_collisions_are_not_logged(self):
        # The rewrite target already exists: nothing new was added, so
        # nothing enters the log (semi-naive discovery needs no re-match).
        inst = Instance([Atom("N", (Null(1),)), Atom("N", (a,))])
        t = inst.tick
        inst.merge_terms(Null(1), a)
        assert list(inst.added_since(t)) == []
        assert inst.facts() == {Atom("N", (a,))}

    def test_copy_resets_the_log(self):
        inst = fresh_instance()
        cp = inst.copy()
        assert cp.tick == 0
        assert cp.facts() == inst.facts()
        cp.add(Atom("N", (c,)))
        assert list(cp.added_since(0)) == [Atom("N", (c,))]
        assert Atom("N", (c,)) not in inst
