"""Unit tests for instances: indexes, merging, database checks."""

import pytest

from repro.model import Atom, Constant, Instance, Null, Variable, database, instance_from_tuples

a, b, c = Constant("a"), Constant("b"), Constant("c")
n1, n2 = Null(1), Null(2)


def E(s, t):
    return Atom("E", (s, t))


class TestBasics:
    def test_add_and_contains(self):
        inst = Instance([E(a, b)])
        assert E(a, b) in inst
        assert E(b, a) not in inst
        assert len(inst) == 1

    def test_add_returns_newness(self):
        inst = Instance()
        assert inst.add(E(a, b)) is True
        assert inst.add(E(a, b)) is False

    def test_variables_rejected(self):
        with pytest.raises(ValueError):
            Instance([Atom("E", (a, Variable("x")))])

    def test_discard(self):
        inst = Instance([E(a, b), E(b, c)])
        assert inst.discard(E(a, b))
        assert not inst.discard(E(a, b))
        assert len(inst) == 1
        assert inst.with_predicate("E") == {E(b, c)}

    def test_copy_independent(self):
        inst = Instance([E(a, b)])
        cp = inst.copy()
        cp.add(E(b, c))
        assert len(inst) == 1 and len(cp) == 2
        # Indexes must be deep-copied too.
        assert inst.with_term(b) == {E(a, b)}


class TestEqualityAndHashContract:
    """The reconciled __eq__/__hash__ contract (see Instance.__hash__):
    equality is value-based over the facts, hashing is explicitly
    forbidden, and frozen() is the hashable stand-in."""

    def test_eq_is_value_based(self):
        # Different construction orders, different delta logs — equal.
        i = Instance([E(a, b), E(b, c)])
        j = Instance([E(b, c)])
        j.add(E(a, b))
        assert i == j
        j.discard(E(b, c))
        assert i != j

    def test_eq_against_plain_sets_both_ways(self):
        i = Instance([E(a, b)])
        assert i == {E(a, b)}
        assert {E(a, b)} == i  # reflected through set's NotImplemented
        assert i != {E(b, a)}

    def test_eq_ignores_derived_state(self):
        i = Instance([E(a, b)])
        j = i.copy()  # copy() drops the delta log entirely
        assert i.tick == 1 and j.tick == 0
        assert i == j

    def test_hash_raises_not_identity(self):
        """Regression: the silent alternative to raising would be the
        identity-based object.__hash__, which breaks a == b ⇒ hash(a) ==
        hash(b) for equal-but-distinct instances.  Pin the TypeError and
        that equal instances really would have collided under identity."""
        i = Instance([E(a, b)])
        j = Instance([E(a, b)])
        assert i == j and i is not j  # identity hashing would split them
        for victim in (i, j):
            with pytest.raises(TypeError, match="unhashable"):
                hash(victim)
        with pytest.raises(TypeError):
            {i: 1}
        with pytest.raises(TypeError):
            {i} | {j}

    def test_frozen_is_the_hashable_view(self):
        i = Instance([E(a, b)])
        j = Instance([E(a, b)])
        assert hash(i.frozen()) == hash(j.frozen())
        assert {i.frozen(): "cached"}[j.frozen()] == "cached"
        # And it is a snapshot: later mutation does not leak into it.
        snap = i.frozen()
        i.add(E(b, c))
        assert E(b, c) not in snap


class TestIndexes:
    def test_predicate_index(self):
        inst = Instance([E(a, b), Atom("N", (a,))])
        assert inst.with_predicate("E") == {E(a, b)}
        assert inst.with_predicate("missing") == set()

    def test_term_index(self):
        inst = Instance([E(a, b), E(b, c)])
        assert inst.with_term(b) == {E(a, b), E(b, c)}
        assert inst.with_term(Constant("zzz")) == set()

    def test_index_updated_on_discard(self):
        inst = Instance([E(a, b)])
        inst.discard(E(a, b))
        assert inst.with_term(a) == set()
        assert inst.predicates() == set()


class TestMerge:
    def test_merge_rewrites_all_facts(self):
        inst = Instance([E(a, n1), E(n1, n2), Atom("N", (n1,))])
        inst.merge_terms(n1, a)
        assert inst.facts() == {E(a, a), E(a, n2), Atom("N", (a,))}

    def test_merge_collapses_duplicates(self):
        inst = Instance([E(a, n1), E(a, a)])
        inst.merge_terms(n1, a)
        assert len(inst) == 1

    def test_merge_null_into_null(self):
        inst = Instance([E(n1, n2)])
        inst.merge_terms(n1, n2)
        assert inst.facts() == {E(n2, n2)}

    def test_merge_constant_rejected(self):
        inst = Instance([E(a, b)])
        with pytest.raises(TypeError):
            inst.merge_terms(a, b)


class TestDomain:
    def test_domain_and_kinds(self):
        inst = Instance([E(a, n1)])
        assert inst.domain() == {a, n1}
        assert inst.nulls() == {n1}
        assert inst.constants() == {a}

    def test_is_database(self):
        assert Instance([E(a, b)]).is_database
        assert not Instance([E(a, n1)]).is_database

    def test_database_constructor_rejects_nulls(self):
        with pytest.raises(ValueError):
            database(E(a, n1))

    def test_null_free_part(self):
        inst = Instance([E(a, b), E(a, n1)])
        assert inst.null_free_part().facts() == {E(a, b)}


class TestConstruction:
    def test_instance_from_tuples(self):
        inst = instance_from_tuples({"N": [("a",)], "E": [("a", "b")]})
        assert Atom("N", (a,)) in inst
        assert E(a, b) in inst

    def test_instance_from_tuples_with_terms(self):
        inst = instance_from_tuples({"E": [(a, n1)]})
        assert E(a, n1) in inst

    def test_apply(self):
        inst = Instance([E(a, n1)])
        out = inst.apply({n1: b})
        assert out.facts() == {E(a, b)}
        assert inst.facts() == {E(a, n1)}  # original untouched
