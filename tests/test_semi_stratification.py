"""Semi-stratification tests (Section 5, Theorems 3 and 5)."""

from repro.chase import ChaseStatus, run_chase
from repro.core import SemiStratification, is_semi_stratified, semi_stratification_components
from repro.criteria import get_criterion, is_stratified
from repro.data import db_1, db_11, sigma_1, sigma_3, sigma_8, sigma_10, sigma_11
from repro.model import parse_dependencies


class TestDefinition:
    def test_sigma11_semi_stratified(self):
        assert is_semi_stratified(sigma_11())

    def test_sigma11_not_stratified(self):
        """Theorem 5.1 strictness witness: Str ⊊ S-Str."""
        assert not is_stratified(sigma_11())
        assert is_semi_stratified(sigma_11())

    def test_sigma1_semi_stratified(self):
        # The EGD defuses the r2 → r1 edge, exactly as in Σ11.
        assert is_semi_stratified(sigma_1())

    def test_sigma10_not_semi_stratified(self):
        # Σ10 has no terminating sequence at all, so any sound CTstd∃
        # criterion must reject it.
        assert not is_semi_stratified(sigma_10())

    def test_easy_sets(self):
        assert is_semi_stratified(sigma_3())
        assert is_semi_stratified(sigma_8())

    def test_components_exposed(self):
        comps = semi_stratification_components(sigma_11())
        # Gf(Σ11) is acyclic: three singleton, cycle-free components.
        assert len(comps) == 3
        assert all(not cyclic for _, cyclic, _ in comps)


class TestTheorem3:
    """S-Str ⇒ a terminating standard chase sequence exists."""

    def test_terminating_sequence_exists_sigma11(self):
        result = run_chase(db_11(), sigma_11(), strategy="full_first",
                           max_steps=200)
        assert result.status is ChaseStatus.SUCCESS
        # The paper's Example 11 result: K = {N(a), E(a,η1), N(η1), E(η1,a)}.
        assert len(result.instance) == 4

    def test_terminating_sequence_exists_sigma1(self):
        result = run_chase(db_1(), sigma_1(), strategy="full_first",
                           max_steps=200)
        assert result.status is ChaseStatus.SUCCESS

    def test_polynomial_length(self):
        # Chase length stays linear-ish in the database for Σ11.
        from repro.model import parse_facts

        small = parse_facts('N("a")')
        big = parse_facts(" ".join(f'N("a{i}")' for i in range(8)))
        small_run = run_chase(small, sigma_11(), strategy="full_first", max_steps=500)
        big_run = run_chase(big, sigma_11(), strategy="full_first", max_steps=500)
        assert small_run.successful and big_run.successful
        assert big_run.step_count <= 8 * max(1, small_run.step_count) + 8


class TestIncomparability:
    """Theorem 5.2: S-Str ∦ {SC, AC, MFA}."""

    def test_sstr_accepts_what_ct_all_criteria_cannot(self):
        # Σ11 ∈ S-Str but Σ11 ∉ CTstd∀, so SC/AC/MFA must reject it.
        for name in ("SC", "AC", "MFA"):
            assert not get_criterion(name).accepts(sigma_11()), name
        assert is_semi_stratified(sigma_11())

    def test_ct_all_criteria_accept_what_sstr_rejects(self):
        # The guard G never holds for nulls, so the chase terminates for
        # every database (safety sees it through affected positions).  The
        # firing relation's hypothetical instances may put G on anything,
        # so Gf has the r1 ⇄ r2 cycle whose component is not weakly
        # acyclic: S-Str rejects a set SC and MFA accept.
        sigma = parse_dependencies(
            """
            r1: C(x) & G(x) -> exists y. R(x, y)
            r2: R(x, y) -> C(y)
            """
        )
        assert get_criterion("SC").accepts(sigma)
        assert get_criterion("MFA").accepts(sigma)
        assert not is_semi_stratified(sigma)

    def test_criterion_interface(self):
        result = SemiStratification().check(sigma_11())
        assert result.accepted
        assert result.details["components"] == 3
