"""Metamorphic properties: verdicts and fingerprints are invariant under
predicate/variable renaming and dependency reordering.

This is the soundness argument of the batch engine's content-addressed
cache (DESIGN.md §4) split into its two halves:

* the canonical fingerprint does not distinguish a program from its
  isomorphs — so a renamed/reordered twin *hits* the cache;
* no criterion distinguishes them either — so the verdict it is served
  is the verdict it would have computed.

Both halves run over seeded random programs: the fingerprint half over
hundreds (it is pure hashing, microseconds each), the verdict half over a
broad sweep of the cheap static criteria plus a budgeted sample of the
expensive semantic ones (where a bug would matter most — these are the
verdicts worth caching).
"""

from __future__ import annotations

import random

import pytest

from repro.batch import canonical_fingerprint
from repro.criteria import get_criterion
from repro.generators import (
    generate_corpus,
    random_dependency_set,
    random_isomorph,
    rename_predicates,
    rename_variables,
    reorder_dependencies,
)
from repro.model import parse_dependencies

#: The metamorphic population: enough seeds that structural corner cases
#: (EGD-only sets, single-dependency sets, repeated atoms) all occur.
N_PROGRAMS = 250

TRANSFORMS = {
    "rename_predicates": rename_predicates,
    "rename_variables": rename_variables,
    "reorder_dependencies": reorder_dependencies,
}


def programs():
    return [
        (seed, random_dependency_set(seed, n_deps=4, n_predicates=3))
        for seed in range(N_PROGRAMS)
    ]


class TestFingerprintInvariance:
    """Isomorphic programs must collide; the population must not."""

    @pytest.mark.parametrize("name", sorted(TRANSFORMS))
    def test_single_transform(self, name):
        rng = random.Random(20160396)
        transform = TRANSFORMS[name]
        for seed, sigma in programs():
            assert canonical_fingerprint(transform(sigma, rng)) == \
                canonical_fingerprint(sigma), f"seed {seed} under {name}"

    def test_composed_transforms(self):
        for seed, sigma in programs():
            twin = random_isomorph(sigma, seed=seed + 1)
            assert canonical_fingerprint(twin) == canonical_fingerprint(sigma)

    def test_population_is_distinguished(self):
        """No two structurally different seeded programs share a key.

        Colour refinement cannot distinguish *every* non-isomorphic pair
        in theory (DESIGN.md §4), but it must distinguish everything this
        generator can produce — a collision here would mean wrong cached
        verdicts in practice, not hypothetically.
        """
        by_fp: dict[str, object] = {}
        duplicates = 0
        for _, sigma in programs():
            fp = canonical_fingerprint(sigma)
            if fp in by_fp:
                # Only acceptable if the programs are literally equal up
                # to labels (the generator does repeat itself).
                assert by_fp[fp] == sigma, "fingerprint collision"
                duplicates += 1
            by_fp[fp] = sigma
        # The generator repeats small programs occasionally; a flood of
        # duplicates would make this test vacuous.
        assert len(by_fp) > N_PROGRAMS * 0.9

    def test_content_changes_key(self):
        sigma = parse_dependencies(
            "r1: N(x) -> exists y. E(x, y)\n"
            "r2: E(x, y) -> N(y)\n"
        )
        grown = parse_dependencies(
            "r1: N(x) -> exists y. E(x, y)\n"
            "r2: E(x, y) -> N(y)\n"
            "r3: E(x, y) -> x = y\n"
        )
        assert canonical_fingerprint(sigma) != canonical_fingerprint(grown)

    def test_labels_are_presentation_not_content(self):
        a = parse_dependencies("r1: N(x) -> exists y. E(x, y)")
        b = parse_dependencies("zz: N(x) -> exists y. E(x, y)")
        assert canonical_fingerprint(a) == canonical_fingerprint(b)

    def test_stable_across_runs(self):
        """Pinned keys: the fingerprint is an on-disk cache key, so it
        must not drift run-to-run or process-to-process.  If this test
        fails after an intentional fingerprint change, bump
        FINGERPRINT_VERSION and re-pin."""
        sigma = parse_dependencies(
            "r1: N(x) -> exists y. E(x, y)\n"
            "r2: E(x, y) -> N(y)\n"
            "r3: E(x, y) -> x = y\n"
        )
        assert canonical_fingerprint(sigma) == "2807ce94cd39e738"


class TestFingerprintIgnoresTermIds:
    """Term interning (``Term.tid``, DESIGN.md §9) is process-local
    machinery: the persisted fingerprint must be a pure function of
    structure, independent of the order in which this process happened
    to allocate term ids."""

    def test_first_occurrence_numbering_not_tid_order(self):
        from repro.model.terms import Variable

        p1 = parse_dependencies("r: P(x1, x2) -> exists z1. Q(x2, z1)")
        # Pre-allocate the twin's variables in *reverse* occurrence
        # order (references held so the weak interner keeps the tids):
        # w3 gets the smallest tid but occurs last, so any leak of tid
        # order into variable numbering would flip the encoding.
        held = [Variable(n) for n in ("w3", "w2", "w1")]
        p2 = parse_dependencies("r: P(w1, w2) -> exists w3. Q(w2, w3)")
        assert canonical_fingerprint(p1) == canonical_fingerprint(p2)
        del held

    def test_fingerprint_survives_tid_counter_churn(self):
        from repro.model.terms import Null

        rng = random.Random(99)
        for seed, sigma in programs()[:50]:
            before = canonical_fingerprint(sigma)
            # Burn a stretch of the global tid counter, then re-take the
            # fingerprint of a renamed twin built from brand-new terms.
            churn = [Null(500_000 + seed * 100 + i) for i in range(60)]
            twin = random_isomorph(sigma, seed=seed + 7)
            assert canonical_fingerprint(twin) == before, f"seed {seed}"
            del churn


class TestVerdictInvariance:
    """Criteria must not distinguish a program from its isomorphs."""

    #: Static criteria: cheap enough for the full population.
    STATIC = ["WA", "SC", "SwA"]
    #: Semantic criteria: witness engine / adornment saturation behind
    #: them, so they run on a budgeted sample.
    SEMANTIC = ["LS", "SAC", "S-Str"]
    SEMANTIC_SEEDS = range(0, 60, 3)

    @pytest.mark.parametrize("name", STATIC)
    def test_static_criteria(self, name):
        criterion = get_criterion(name)
        for seed, sigma in programs():
            twin = random_isomorph(sigma, seed=seed + 7)
            assert criterion.accepts(sigma) == criterion.accepts(twin), (
                f"{name} distinguishes seed {seed} from its isomorph"
            )

    @pytest.mark.parametrize("name", SEMANTIC)
    def test_semantic_criteria(self, name):
        criterion = get_criterion(name)
        for seed in self.SEMANTIC_SEEDS:
            sigma = random_dependency_set(seed, n_deps=4, n_predicates=3)
            twin = random_isomorph(sigma, seed=seed + 7)
            a = criterion.check(sigma)
            b = criterion.check(twin)
            assert a.accepted == b.accepted, (
                f"{name} distinguishes seed {seed} from its isomorph"
            )
            # Exactness must agree too: an approximation triggered by
            # symbol *names* would poison cached records.
            assert a.exact == b.exact, (name, seed)

    def test_corpus_ontologies(self):
        """The real workload: corpus ontologies survive the transforms."""
        corpus = generate_corpus(scale=0.03, tests_scale=0.05, max_size=15)
        sac = get_criterion("SAC")
        for ont in corpus:
            twin = random_isomorph(ont.sigma, seed=ont.seed)
            assert canonical_fingerprint(twin) == canonical_fingerprint(ont.sigma)
            assert sac.accepts(ont.sigma) == sac.accepts(twin), ont.name
