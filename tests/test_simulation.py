"""EGD→TGD simulation tests (Section 4, Example 8, Theorem 2)."""

from repro.chase import ChaseStatus, run_chase
from repro.data import db_8, sigma_1, sigma_8
from repro.model import EGD, TGD, parse_dependencies, parse_facts
from repro.simulation import (
    EQ,
    enumerate_choices,
    natural_simulation,
    split_repeated_variables,
    substitution_free_simulation,
)


class TestSubstitutionFreeSimulation:
    def test_no_egds_remain(self):
        out = substitution_free_simulation(sigma_8())
        assert not out.egds
        assert all(isinstance(d, TGD) for d in out)

    def test_example8_structure(self):
        """The paper's Example 8 walk-through."""
        out = substitution_free_simulation(sigma_8())
        labels = {d.label for d in out}
        # 1. equality axioms present.
        assert "eq_sym" in labels and "eq_trans" in labels
        assert {"eq_refl_A", "eq_refl_B", "eq_refl_C"} <= labels
        # 2. the EGDs r4, r5 became Eq-headed TGDs.
        eq_heads = [
            d for d in out
            if d.label in ("r4_eq", "r5_eq") or
            (d.head and d.head[0].predicate == EQ and d.label not in
             ("eq_sym", "eq_trans") and not d.label.startswith("eq_refl"))
        ]
        assert len([d for d in out if d.head[0].predicate == EQ
                    and d.label.endswith("_eq")]) == 2
        # 3. r1's repeated body variable was split with an Eq atom.
        r1 = [d for d in out if d.label == "r1"][0]
        body_preds = [a.predicate for a in r1.body]
        assert EQ in body_preds
        assert len(r1.body) == 3
        # r2 and r3 unchanged (no repeated body variables).
        r2 = [d for d in out if d.label == "r2"][0]
        assert len(r2.body) == 1

    def test_repeated_variable_in_single_atom(self):
        sigma = parse_dependencies("r: E(x, x) -> P(x)")
        out = substitution_free_simulation(sigma)
        r = [d for d in out if d.label == "r"][0]
        non_eq = [a for a in r.body if a.predicate != EQ]
        # Each variable occurs at most once among the ordinary atoms.
        seen = []
        for a in non_eq:
            seen.extend(a.args)
        assert len(seen) == len(set(seen))

    def test_soundness_on_terminating_simulation(self):
        # Theorem 2.1 (soundness) spot check: if Σ' terminates under a
        # bounded run, Σ must too.  We use a simple functional-dependency
        # set whose simulation is terminating.
        sigma = parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: R(x, y) & R(x, z) -> y = z
            """
        )
        sim = substitution_free_simulation(sigma)
        db = parse_facts('A("a") R("a", "b")')
        sim_run = run_chase(db, sim, max_steps=500)
        direct_run = run_chase(db, sigma, max_steps=500)
        assert sim_run.status is ChaseStatus.SUCCESS
        assert direct_run.status is ChaseStatus.SUCCESS

    def test_example8_incompleteness(self):
        """Theorem 2.2: Σ8 ∈ CTstd∀ but its simulation has no terminating
        sequence — the simulation's TGDs regenerate A/B/Eq facts forever."""
        sigma = sigma_8()
        db = db_8()
        # Σ8 itself: the chase terminates (quickly).
        direct = run_chase(db, sigma, strategy="fifo", max_steps=300)
        assert direct.terminated
        # The simulation: no strategy we try terminates within the budget.
        sim = substitution_free_simulation(sigma)
        for strategy in ("fifo", "full_first", "lifo"):
            result = run_chase(db, sim, strategy=strategy, max_steps=600)
            assert result.status is ChaseStatus.EXCEEDED, strategy

    def test_enumerate_choices(self):
        sigma = sigma_8()
        r1 = sigma[0]  # A(x) ∧ B(x) → C(x): two choices per the paper
        variants = list(enumerate_choices(r1))
        assert len(variants) == 2
        bodies = {tuple(str(a) for a in v.body) for v in variants}
        assert len(bodies) == 2

    def test_split_leaves_singletons_alone(self):
        r = parse_dependencies("r: A(x) & B(y) -> C(x)")[0]
        assert split_repeated_variables(r) == r


class TestNaturalSimulation:
    def test_congruence_rules_per_position(self):
        sigma = sigma_1()  # N/1 and E/2
        out = natural_simulation(sigma)
        subst_rules = [d for d in out if d.label.startswith("eq_subst")]
        assert len(subst_rules) == 3  # N[1], E[1], E[2]

    def test_bodies_not_split(self):
        sigma = sigma_8()
        out = natural_simulation(sigma)
        r1 = [d for d in out if d.label == "r1"][0]
        assert len(r1.body) == 2  # A(x) ∧ B(x) kept intact

    def test_no_egds_remain(self):
        assert not natural_simulation(sigma_8()).egds
