"""The batch engine's persisted firing-decision artifacts
(``repro.batch.artifacts``): codec round-trip, renaming invariance,
store durability, and the warm-start contract — a rerun that misses the
result cache (changed evaluation parameters) must still skip its chase
probes.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import classify
from repro.batch import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    BatchConfig,
    canonical_fingerprint,
    decisions_to_json,
    evaluate_corpus,
    seed_decisions,
)
from repro.firing.relations import DecisionCache, shared_firing_cache
from repro.generators import random_dependency_set
from repro.generators.corpus import GeneratedOntology
from repro.generators.metamorphic import rename_predicates, rename_variables


def _classify_decisions(sigma) -> DecisionCache:
    """Run the full portfolio over a fresh decision cache and return it."""
    cache = DecisionCache()
    with shared_firing_cache(cache):
        classify(sigma)
    return cache


def _programs(seeds):
    return [
        GeneratedOntology(
            name=f"p{seed}",
            class_name="t",
            sigma=random_dependency_set(seed, n_deps=3, egd_fraction=0.3),
            seed=seed,
            character="t",
        )
        for seed in seeds
    ]


class TestCodec:
    def test_roundtrip_repopulates_every_own_decision(self):
        sigma = random_dependency_set(4, n_deps=3, egd_fraction=0.3)
        cache = _classify_decisions(sigma)
        records = decisions_to_json(sigma, cache)
        assert records, "the portfolio should have decided some edges"
        fresh = DecisionCache()
        seeded = seed_decisions(sigma, records, fresh)
        assert seeded == len(records)
        own = {
            key: d.edge
            for key, d in cache.snapshot().items()
            if all(r in sigma for r in (key[1], key[2]))
        }
        assert {k: d.edge for k, d in fresh.snapshot().items()} == own

    def test_foreign_dependencies_are_skipped(self):
        # LS probes pairs of the adorned set Σα through the same cache;
        # those must not serialise as artifacts of Σ.
        sigma = random_dependency_set(9, n_deps=3, egd_fraction=0.3)
        cache = _classify_decisions(sigma)
        records = decisions_to_json(sigma, cache)
        codes = {r["r1"] for r in records} | {r["r2"] for r in records}
        from repro.batch.artifacts import dependency_codes

        own = dependency_codes(sigma)
        assert own is not None
        assert codes <= set(own.values())

    def test_decisions_survive_renaming(self):
        # The twin shares the fingerprint, so the store would serve the
        # original's records to it — seeding them must fully warm the
        # twin's cache (probe count zero afterwards).
        sigma = random_dependency_set(6, n_deps=3, egd_fraction=0.3)
        records = decisions_to_json(sigma, _classify_decisions(sigma))
        rng = random.Random(1)
        twin = rename_variables(rename_predicates(sigma, rng), rng)
        assert canonical_fingerprint(twin) == canonical_fingerprint(sigma)
        warmed = DecisionCache()
        assert seed_decisions(twin, records, warmed) == len(records)
        # The oracle-heavy criteria probe only Σ's own pairs (LS would
        # also probe the adorned set Σα, which is never persisted).
        oracle_criteria = ["Str", "CStr", "SR", "IR", "S-Str"]
        with shared_firing_cache(warmed):
            report = classify(twin, criteria=oracle_criteria)
        stats = warmed.stats()
        assert stats["misses"] == 0, "a warm-started twin re-probed an edge"
        # And the verdicts match the original's (metamorphic invariance).
        original = classify(sigma, criteria=oracle_criteria)
        assert [(n, r.accepted) for n, r in report.results.items()] == [
            (n, r.accepted) for n, r in original.results.items()
        ]

    def test_symmetric_program_refuses_persistence(self):
        # Colour refinement cannot tell the two halves of a
        # predicate-symmetric program apart, so their codes collide and
        # the ordered pairs (d1,d1)/(d1,d2) would serialise identically.
        # Such programs must opt out of persistence entirely: seeding a
        # conflated decision once flipped exact rejections of this
        # non-terminating program into acceptances.
        from repro.model.parser import parse_dependencies

        sigma = parse_dependencies(
            "r1: P(x, y) -> exists z. Q(y, z)\n"
            "r2: Q(x, y) -> exists z. P(y, z)\n"
        )
        cache = _classify_decisions(sigma)
        assert decisions_to_json(sigma, cache) == []
        # And the seeding side refuses records too, even hand-made ones.
        fresh = DecisionCache()
        fake = [{"kind": "precedes", "r1": "c", "r2": "c",
                 "variant": "oblivious", "budget": 1,
                 "edge": False, "exact": True}]
        assert seed_decisions(sigma, fake, fresh) == 0

    def test_symmetric_program_warm_rerun_is_verdict_identical(self, tmp_path):
        from repro.model.parser import parse_dependencies

        sigma = parse_dependencies(
            "r1: P(x, y) -> exists z. Q(y, z)\n"
            "r2: Q(x, y) -> exists z. P(y, z)\n"
        )
        programs = [
            GeneratedOntology(name="sym", class_name="t", sigma=sigma,
                              seed=0, character="t")
        ]
        criteria = ["Str", "CStr", "SR", "IR", "S-Str"]
        cold = evaluate_corpus(
            programs,
            BatchConfig(mode="classify", cache_dir=tmp_path, criteria=criteria),
        )
        warm = evaluate_corpus(
            programs,
            BatchConfig(
                mode="classify", cache_dir=tmp_path,
                criteria=criteria, resume=False,
            ),
        )
        assert (
            warm.results[0].record["data"]["criteria"]
            == cold.results[0].record["data"]["criteria"]
        )

    def test_stale_records_degrade_to_cold_probes(self):
        sigma = random_dependency_set(6, n_deps=3)
        cache = DecisionCache()
        stale = [{"kind": "precedes", "r1": "gone", "r2": "gone",
                  "variant": "standard", "budget": 1, "edge": True,
                  "exact": True}]
        assert seed_decisions(sigma, stale, cache) == 0
        assert len(cache) == 0


class TestArtifactStore:
    @pytest.fixture(params=["sqlite", "jsonl"])
    def backend(self, request):
        return request.param

    def test_put_get_and_merge_dedup(self, tmp_path, backend):
        store = ArtifactStore(tmp_path, backend=backend)
        rec = {"kind": "precedes", "r1": "a", "r2": "b",
               "variant": "standard", "budget": 1, "edge": True, "exact": True}
        assert store.put("k", [rec]) == 1
        assert store.put("k", [rec]) == 0  # same probe: nothing appended
        store.close()
        reloaded = ArtifactStore(tmp_path, backend=backend)
        assert reloaded.get("k") == [rec]
        assert reloaded.get("other") == []

    def test_schema_bump_invalidates(self, tmp_path, backend):
        store = ArtifactStore(tmp_path, backend=backend)
        store.put("k", [{"kind": "precedes", "r1": "a", "r2": "b",
                         "variant": "standard", "budget": 1,
                         "edge": True, "exact": True}])
        store.close()
        if backend == "jsonl":
            import json

            lines = []
            for line in store.path.read_text().splitlines():
                entry = json.loads(line)
                entry["schema"] = ARTIFACT_SCHEMA + 1
                lines.append(json.dumps(entry))
            store.path.write_text("\n".join(lines) + "\n")
        else:
            import sqlite3

            # repro-lint: disable=fork-safety -- test fixture rewrites schema versions directly; store handle is closed
            with sqlite3.connect(store.path) as conn:
                conn.execute(
                    "UPDATE artifacts SET schema = ?", (ARTIFACT_SCHEMA + 1,)
                )
        assert ArtifactStore(tmp_path, backend=backend).get("k") == []

    def test_corrupted_tail_is_skipped(self, tmp_path):
        # JSONL-specific damage tolerance (sqlite equivalents live in
        # tests/test_store_crash.py).
        store = ArtifactStore(tmp_path, backend="jsonl")
        rec = {"kind": "precedes", "r1": "a", "r2": "b",
               "variant": "standard", "budget": 1, "edge": True, "exact": True}
        store.put("k", [rec])
        store.close()
        with store.path.open("a") as fh:
            fh.write('{"schema": 1, "key": "k2", "oracle": [tru')  # crash mid-line
        reloaded = ArtifactStore(tmp_path, backend="jsonl")
        assert reloaded.get("k") == [rec]
        assert reloaded.get("k2") == []


class TestEngineWarmStart:
    def test_params_change_skips_chase_probes(self, tmp_path):
        programs = _programs(range(5))
        cold = evaluate_corpus(
            programs, BatchConfig(mode="classify", cache_dir=tmp_path)
        )
        assert cold.decisions_recorded > 0
        assert cold.decisions_preloaded == 0
        # Different criteria subset → params mismatch → every program is
        # a result-cache miss, but the decision layer is warm.
        warm = evaluate_corpus(
            programs,
            BatchConfig(
                mode="classify", cache_dir=tmp_path,
                criteria=["Str", "CStr", "SR", "IR", "S-Str"],
            ),
        )
        assert warm.computed == len(programs)
        assert warm.decisions_preloaded > 0
        assert warm.decisions_recorded == 0  # no new probes were needed
        # Verdicts agree with the cold run criterion by criterion.
        for a, b in zip(cold.results, warm.results):
            cold_criteria = a.record["data"]["criteria"]
            for name, verdict in b.record["data"]["criteria"].items():
                assert verdict["accepted"] == cold_criteria[name]["accepted"]

    def test_result_hits_do_not_touch_the_store(self, tmp_path):
        programs = _programs(range(3))
        config = BatchConfig(mode="classify", cache_dir=tmp_path)
        evaluate_corpus(programs, config)
        size = ArtifactStore(tmp_path).path.stat().st_size
        rerun = evaluate_corpus(programs, config)
        assert rerun.computed == 0
        assert ArtifactStore(tmp_path).path.stat().st_size == size

    def test_evaluate_mode_has_no_store(self, tmp_path):
        programs = _programs(range(2))
        report = evaluate_corpus(
            programs, BatchConfig(mode="evaluate", cache_dir=tmp_path)
        )
        assert report.decisions_recorded == 0
        assert not (tmp_path / "artifacts.jsonl").exists()
