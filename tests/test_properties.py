"""Property-based tests (hypothesis) over the core invariants.

Random inputs come from the seeded random-dependency generator (dependency
sets) and from hypothesis strategies (instances, mappings).  Budgets keep
each case tiny; the properties are the load-bearing laws of the library:

* chase results are models; merges preserve containment;
* cores are homomorphically equivalent retracts;
* criterion hierarchy inclusions (WA ⊆ SC, Str ⊆ S-Str, AC ⊆ SAC, C ⊆ Adn∃-C)
  — asserted for exact runs; budget/livelock-truncated ones are conservative;
* accepted sets really admit terminating sequences (criterion soundness,
  checked with the bounded explorer);
* simulations are TGD-only and preserve predicates.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase import ChaseStatus, explore_chase, run_chase
from repro.core import AdnCombined, adn_exists, is_semi_acyclic, is_semi_stratified
from repro.criteria import get_criterion, is_safe, is_stratified, is_weakly_acyclic
from repro.generators import random_dependency_set, seed_database
from repro.homomorphism import core, instance_maps_into, is_model, satisfies_all
from repro.model import Atom, Constant, Instance, Null
from repro.simulation import substitution_free_simulation

# Derandomized so every run (and CI) examines the same examples.
SETTINGS = settings(
    max_examples=25,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)

# PR 1 drew the witness-engine-heavy criteria tests from a pre-verified
# seed pool because `adn_exists` diverged (livelocked) on ~0.4% of random
# 3-dependency programs (seeds 36/43/166 of the 0–499 sweep).  The
# adornment saturation now runs under a budget with a livelock detector
# (see repro.budget and tests/test_adn_divergence.py), so *any* draw
# completes quickly with an explicit non-exact verdict and the criteria
# tests draw from the full seed space again — derandomize above keeps the
# chosen examples reproducible run-to-run, nothing more.  The historical
# pool survives as a fast smoke subset: every member's criterion calls
# are exact and sub-second, which TestCriteriaSeedPoolSmoke pins.
criteria_seeds = seeds
CRITERIA_SEED_POOL = [s for s in range(66) if s not in (36, 43)]


# -- instance strategies -----------------------------------------------------

terms = st.one_of(
    st.sampled_from([Constant("a"), Constant("b"), Constant("c")]),
    st.integers(min_value=1, max_value=4).map(Null),
)
facts = st.one_of(
    st.tuples(st.just("E"), st.tuples(terms, terms)),
    st.tuples(st.just("N"), st.tuples(terms)),
).map(lambda p: Atom(p[0], p[1]))
instances = st.lists(facts, max_size=8).map(Instance)


class TestChaseProperties:
    @SETTINGS
    @given(seeds)
    def test_successful_chase_result_is_model(self, seed):
        sigma = random_dependency_set(seed, n_deps=4, egd_fraction=0.3)
        db = seed_database(sigma)
        result = run_chase(db, sigma, strategy="full_first", max_steps=300)
        if result.status is ChaseStatus.SUCCESS:
            assert is_model(result.instance, db, sigma)

    @SETTINGS
    @given(seeds)
    def test_chase_extends_database_modulo_merging(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.2)
        db = seed_database(sigma)
        result = run_chase(db, sigma, strategy="full_first", max_steps=200)
        if result.status is ChaseStatus.SUCCESS:
            # D maps homomorphically into the result (merges may rename
            # nulls, but the database is null-free so containment holds).
            assert all(f in result.instance for f in db)


class TestCoreProperties:
    @SETTINGS
    @given(instances)
    def test_core_is_retract(self, inst):
        c = core(inst, budget=200_000)
        assert c.facts() <= inst.facts()
        assert instance_maps_into(inst, c) is not None
        assert instance_maps_into(c, inst) is not None

    @SETTINGS
    @given(instances)
    def test_core_idempotent(self, inst):
        c = core(inst, budget=200_000)
        assert core(c, budget=200_000).facts() == c.facts()

    @SETTINGS
    @given(instances)
    def test_core_preserves_null_free_part(self, inst):
        c = core(inst, budget=200_000)
        assert c.null_free_part().facts() == inst.null_free_part().facts()


class TestHierarchyProperties:
    @SETTINGS
    @given(seeds)
    def test_wa_subset_sc(self, seed):
        sigma = random_dependency_set(seed, n_deps=4, egd_fraction=0.0)
        if is_weakly_acyclic(sigma):
            assert is_safe(sigma)

    @SETTINGS
    @given(criteria_seeds)
    def test_str_subset_sstr(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        if is_stratified(sigma):
            assert is_semi_stratified(sigma)

    @SETTINGS
    @given(criteria_seeds)
    def test_wa_subset_adn_wa(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.2)
        if get_criterion("WA").accepts(sigma):
            result = AdnCombined("WA").check(sigma)
            # The inclusion is a theorem about completed runs; a budget-
            # or livelock-truncated adornment reports exact=False and its
            # conservative rejection proves nothing.
            assert result.accepted or not result.exact

    @SETTINGS
    @given(criteria_seeds)
    def test_sstr_subset_sac(self, seed):
        # Theorem 9: S-Str ⊆ SAC (for completed adornment runs; truncated
        # ones are conservative and flagged exact=False).
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        if is_semi_stratified(sigma):
            result = adn_exists(sigma)
            assert result.acyclic or not result.exact


class TestSoundnessProperties:
    @SETTINGS
    @given(criteria_seeds)
    def test_sstr_accepts_only_exists_terminating(self, seed):
        """If S-Str accepts, the bounded explorer finds a terminating
        sequence (on the seed database)."""
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        if not is_semi_stratified(sigma):
            return
        db = seed_database(sigma)
        exploration = explore_chase(db, sigma, max_depth=10, max_states=4_000)
        assert exploration.some_terminating or exploration.explored_states >= 4_000

    @SETTINGS
    @given(seeds)
    def test_wa_accepts_only_all_terminating(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.0)
        if not is_weakly_acyclic(sigma):
            return
        db = seed_database(sigma)
        result = run_chase(db, sigma, strategy="fifo", max_steps=2_000)
        assert result.terminated


class TestSimulationProperties:
    @SETTINGS
    @given(seeds)
    def test_simulation_is_tgd_only(self, seed):
        sigma = random_dependency_set(seed, n_deps=4, egd_fraction=0.5)
        sim = substitution_free_simulation(sigma)
        assert not sim.egds

    @SETTINGS
    @given(seeds)
    def test_simulation_preserves_predicates(self, seed):
        sigma = random_dependency_set(seed, n_deps=4, egd_fraction=0.5)
        sim = substitution_free_simulation(sigma)
        original = set(sigma.predicates())
        simulated = set(sim.predicates())
        assert original <= simulated
        assert simulated - original == {"Eq"}

    @SETTINGS
    @given(seeds)
    def test_split_bodies_have_no_repeats(self, seed):
        sigma = random_dependency_set(seed, n_deps=4, egd_fraction=0.3)
        sim = substitution_free_simulation(sigma)
        for dep in sim:
            if dep.label.startswith("eq_"):
                continue
            seen = []
            for atom in dep.body:
                if atom.predicate == "Eq":
                    continue
                seen.extend(t for t in atom.args if t.is_variable)
            assert len(seen) == len(set(seen)), dep


class TestCriteriaSeedPoolSmoke:
    """The PR 1 pre-verified pool, kept as a fast smoke subset: every
    member must stay exact and quick for the witness-engine-heavy
    criteria (a regression here would mean the criteria got slower or
    less precise on known-good programs, not just on adversarial ones)."""

    @SETTINGS
    @given(st.sampled_from(CRITERIA_SEED_POOL))
    def test_pool_members_stay_exact(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        result = adn_exists(sigma)
        assert result.exact
        assert result.stats["stopped"] is None


class TestAdornmentProperties:
    @SETTINGS
    @given(criteria_seeds)
    def test_src_of_adorned_is_sigma(self, seed):
        from repro.core import strip_adornments_dep

        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        result = adn_exists(sigma)
        for rec in result.records:
            if rec.src is not None:
                assert strip_adornments_dep(rec.dep) == rec.src
                assert rec.src in sigma

    @SETTINGS
    @given(criteria_seeds)
    def test_adorned_set_at_least_bridges(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        result = adn_exists(sigma)
        assert result.stats["size_adorned"] >= len(sigma.predicates())
