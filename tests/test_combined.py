"""Adn∃-C combination tests (Theorems 10 and 11) and Theorem 7."""

from repro.chase import ChaseStatus, run_chase
from repro.core import AdnCombined, adn_combined_check, adn_exists, strip_adornments_instance
from repro.criteria import get_criterion
from repro.data import db_1, sigma_1, sigma_3, sigma_10, sigma_11
from repro.homomorphism import is_model
from repro.model import parse_facts


def gain_witness():
    """WA rejects this set (special cycle A[1] → R[2] → A[1]), but the
    adorned set splits R into R^bb and R^bf1: nulls live at R^bf1[2],
    which never joins B — coherence stops the adorned r2 from closing the
    cycle, so Adn∃-WA accepts (the Theorem 11 gain mechanism)."""
    from repro.model import parse_dependencies

    return parse_dependencies(
        """
        r1: A(x) -> exists y. R(x, y)
        r2: R(x, y) & B(y) -> A(y)
        """
    )


class TestTheorem11:
    """C ⊊ Adn∃-C: the adorned set is easier to recognise than Σ."""

    def test_wa_combination_gain(self):
        sigma = gain_witness()
        assert not get_criterion("WA").accepts(sigma)
        assert AdnCombined("WA").accepts(sigma)

    def test_sc_combination_gain(self):
        # Safety conflates the two null generations: affectedness makes
        # R[2] → C[1] → B[1] → R[2] a special cycle.  The adorned set
        # separates generation f1 (whose nulls do reach C) from generation
        # f2 (whose nulls cannot: C^f2 is never derivable, by coherence),
        # so the cycle disappears.
        from repro.model import parse_dependencies

        sigma = parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: B(x) -> exists y. R(x, y)
            r3: R(x, y) & C(y) -> B(y)
            r4: A(x) & R(x, y) -> C(y)
            """
        )
        assert not get_criterion("SC").accepts(sigma)
        assert AdnCombined("SC").accepts(sigma)

    def test_containment_on_paper_sets(self):
        # If C accepts Σ, Adn∃-C accepts Σ (the adorned set preserves or
        # weakens structure).
        for sigma in (sigma_3(), sigma_1(), sigma_11()):
            for name in ("WA", "SC"):
                if get_criterion(name).accepts(sigma):
                    assert AdnCombined(name).accepts(sigma), (name, sigma)

    def test_sigma10_still_rejected(self):
        # No combination may accept a set with no terminating sequence.
        for name in ("WA", "SC", "S-Str"):
            assert not AdnCombined(name).accepts(sigma_10()), name

    def test_one_shot_helper(self):
        result = adn_combined_check(gain_witness(), "WA")
        assert result.accepted
        assert result.criterion == "Adn-WA"


class TestTheorem7:
    """Canonical models of (D, Σµ) project onto canonical models of (D, Σ)."""

    def test_sigma1_projection(self):
        sigma = sigma_1()
        mu = adn_exists(sigma).adorned
        db = db_1()
        run = run_chase(db, mu, strategy="full_first", max_steps=500)
        assert run.status is ChaseStatus.SUCCESS
        projected = strip_adornments_instance(run.instance)
        # src(CMod(D,Σµ)) ⊆ CMod(D,Σ): the projection is a model of (D,Σ)
        # (canonicity spot-checked via the chase result of Σ itself).
        assert is_model(projected, db, sigma)
        direct = run_chase(db, sigma, strategy="full_first", max_steps=500)
        assert projected.null_free_part().facts() >= direct.instance.null_free_part().facts()

    def test_sigma3_projection(self):
        sigma = sigma_3()
        mu = adn_exists(sigma).adorned
        db = parse_facts('P("a","b") Q("c","d")')
        run = run_chase(db, mu, strategy="full_first", max_steps=500)
        assert run.status is ChaseStatus.SUCCESS
        projected = strip_adornments_instance(run.instance)
        assert is_model(projected, db, sigma)

    def test_nonempty_iff(self):
        # CMod(D, Σµ) ≠ ∅ iff CMod(D, Σ) ≠ ∅ — spot check on Σ1.
        sigma = sigma_1()
        mu = adn_exists(sigma).adorned
        db = db_1()
        mu_run = run_chase(db, mu, strategy="full_first", max_steps=500)
        direct_run = run_chase(db, sigma, strategy="full_first", max_steps=500)
        assert mu_run.successful == direct_run.successful


class TestInterface:
    def test_name(self):
        assert AdnCombined("WA").name == "Adn-WA"

    def test_details(self):
        result = AdnCombined("WA").check(sigma_1())
        assert "size_adorned" in result.details
        assert result.details["inner"] == "WA"
