"""The query surface, property-tested against its reference.

:func:`repro.store.query.query_rows` is the executable specification;
the sqlite backend compiles the same ``ResultQuery`` to one SELECT.  A
seeded fuzz population (both record shapes, duplicate sort values,
shared key prefixes, overwrites) is pushed through hundreds of random
queries and full pagination walks on both implementations — every page
and every cursor must agree exactly.  The keyset-stability tests then
pin the property the future HTTP service needs: a cursor stays valid
while the store is being written to.
"""

from __future__ import annotations

import random

import pytest

from repro.batch import ResultCache
from repro.store import QueryError, ResultQuery, query_rows

VERDICTS = ["terminating", "non-terminating", "unknown"]
CRITERIA = ["WA", "SC", "SwA", "SR", "IR"]
DIMENSIONS = [None, None, None, "steps", "atoms"]
PREFIXES = ["a0", "a1", "b7", "ff"]


def _entry(rng: random.Random, i: int) -> tuple[str, str, dict]:
    """One synthetic cache record: classify- or evaluate-shaped."""
    key = rng.choice(PREFIXES) + f"{rng.getrandbits(32):08x}"
    if rng.random() < 0.5:
        data = {
            "verdict": rng.choice(VERDICTS),
            "accepted_by": rng.sample(CRITERIA, rng.randint(0, 3)),
        }
    else:
        data = {
            "semi_acyclic": rng.random() < 0.5,
            "chase_halted": rng.random() < 0.5,
        }
    record = {
        "name": f"p{rng.randint(0, 20)}",  # deliberate duplicates
        "data": data,
    }
    # ~1 in 4 records never measured wall-clock: elapsed_ms stays absent
    # and sorts as NULL.  Regression: the sqlite keyset cursor used to
    # compile to a bare row-value comparison, which evaluates to NULL on
    # these rows and silently dropped them mid-walk.
    if rng.random() < 0.75:
        record["elapsed_ms"] = float(rng.choice([0, 1, 1, 5, rng.randint(0, 50)]))
    dim = rng.choice(DIMENSIONS)
    if dim:
        record["exhausted"] = {"dimension": dim}
    return key, "params", record


def _populate(cache: ResultCache, rng: random.Random, n: int) -> None:
    keys = []
    for i in range(n):
        key, params, record = _entry(rng, i)
        cache.put(key, params, record)
        keys.append(key)
    # Overwrites re-mint seq identically on both backends.
    for key in rng.sample(keys, max(1, n // 10)):
        _, params, record = _entry(rng, -1)
        cache.put(key, params, record)


def _random_query(rng: random.Random, cursor: str | None = None) -> ResultQuery:
    sign = rng.choice(["", "-"])
    return ResultQuery(
        verdict=rng.choice([None, None] + VERDICTS),
        criterion=rng.choice([None, None] + CRITERIA),
        exhausted=rng.choice([None, None, True, False]),
        key_prefix=rng.choice([None, None] + PREFIXES + ["a"]),
        sort=sign + rng.choice(["seq", "name", "verdict", "elapsed_ms", "key"]),
        limit=rng.choice([1, 3, 7, 50]),
        cursor=cursor,
    )


def _walk(run, q: ResultQuery) -> list[dict]:
    """Exhaust a query's pagination (from ``q.cursor``, if set); returns
    every emitted row."""
    emitted = []
    cursor = q.cursor
    for _ in range(1000):  # hard stop against a cursor loop
        page = run(
            ResultQuery(
                verdict=q.verdict, criterion=q.criterion,
                exhausted=q.exhausted, key_prefix=q.key_prefix,
                sort=q.sort, limit=q.limit, cursor=cursor,
            )
        )
        emitted.extend(page.rows)
        if page.next_cursor is None:
            return emitted
        cursor = page.next_cursor
    raise AssertionError("pagination never terminated")


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("query"), backend="sqlite")
    _populate(cache, random.Random(7), 150)
    return cache


class TestSqliteMatchesReference:
    def test_single_pages_agree(self, populated):
        rng = random.Random(11)
        rows = populated._backend.rows()
        for _ in range(300):
            q = _random_query(rng)
            got = populated.query(q)
            want = query_rows(rows, q)
            assert got.rows == want.rows, f"page mismatch for {q}"
            assert got.next_cursor == want.next_cursor, f"cursor mismatch for {q}"

    def test_full_walks_agree_and_cover_exactly(self, populated):
        rng = random.Random(13)
        rows = populated._backend.rows()
        for _ in range(60):
            q = _random_query(rng)
            got = _walk(populated.query, q)
            want = _walk(lambda qq: query_rows(rows, qq), q)
            assert got == want
            # A walk is a permutation-free cover of the filtered set.
            seqs = [r["seq"] for r in got]
            assert len(seqs) == len(set(seqs))

    def test_cursor_round_trips_through_pages(self, populated):
        page = populated.query(sort="name", limit=5)
        assert page.next_cursor is not None
        nxt = populated.query(sort="name", limit=5, cursor=page.next_cursor)
        first = {r["seq"] for r in page.rows}
        assert first.isdisjoint(r["seq"] for r in nxt.rows)


class TestBackendsAgree:
    def test_jsonl_and_sqlite_serve_identical_pages(self, tmp_path):
        sq = ResultCache(tmp_path / "sq", backend="sqlite")
        js = ResultCache(tmp_path / "js", backend="jsonl")
        _populate(sq, random.Random(23), 80)
        _populate(js, random.Random(23), 80)
        rng = random.Random(29)
        for _ in range(150):
            q = _random_query(rng)
            assert sq.query(q) == js.query(q), f"backends disagree on {q}"


class TestKeysetStability:
    """Rows inserted behind an open cursor never shift, duplicate, or
    hide rows already emitted."""

    def test_inserts_behind_the_cursor_do_not_disturb_the_walk(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        rng = random.Random(31)
        _populate(cache, rng, 60)
        q = ResultQuery(sort="name", limit=5)
        original = {r["seq"] for r in _walk(cache.query, q)}
        emitted: list[dict] = []
        cursor = None
        step = 0
        while True:
            page = cache.query(
                ResultQuery(sort="name", limit=5, cursor=cursor)
            )
            emitted.extend(page.rows)
            if page.next_cursor is None:
                break
            cursor = page.next_cursor
            # Interleave: insert rows sorting strictly *behind* the
            # cursor (names below every generated "p…" name).
            cache.put(f"zz{step:04d}", "params",
                      {"name": f"a-behind-{step}", "data": {}})
            step += 1
        seqs = [r["seq"] for r in emitted]
        assert len(seqs) == len(set(seqs)), "a row was emitted twice"
        assert original <= set(seqs), "an original row was hidden"
        assert step > 0  # the interleaving actually happened

    def test_inserts_ahead_of_the_cursor_are_picked_up(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        for i in range(6):
            cache.put(f"k{i}", "params", {"name": f"m{i}", "data": {}})
        page = cache.query(sort="name", limit=3)
        cache.put("late", "params", {"name": "z-late", "data": {}})
        rest = _walk(
            cache.query,
            ResultQuery(sort="name", limit=3, cursor=page.next_cursor),
        )
        assert "z-late" in [r["name"] for r in rest]


class TestNullSortValues:
    """NULL elapsed_ms rows paginate like any others (NULLs first
    ascending / last descending, ties by seq) instead of vanishing."""

    @pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
    @pytest.mark.parametrize("sort", ["elapsed_ms", "-elapsed_ms"])
    def test_walk_covers_null_rows_exactly_once(self, tmp_path, backend, sort):
        cache = ResultCache(tmp_path / backend, backend=backend)
        _populate(cache, random.Random(37), 40)
        rows = cache._backend.rows()
        nulls = [r["seq"] for r in rows if r["elapsed_ms"] is None]
        assert nulls, "population must include unmeasured records"
        emitted = _walk(cache.query, ResultQuery(sort=sort, limit=3))
        seqs = [r["seq"] for r in emitted]
        assert len(seqs) == len(set(seqs))
        assert set(seqs) == {r["seq"] for r in rows}

    def test_cursor_landing_on_a_null_row_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path, backend="sqlite")
        for i in range(4):
            cache.put(f"n{i}", "params", {"name": f"u{i}", "data": {}})
        for i in range(4):
            cache.put(f"m{i}", "params",
                      {"name": f"m{i}", "data": {}, "elapsed_ms": float(i)})
        # Ascending sorts NULLs first, so page one ends on a NULL row
        # and its cursor value is JSON null.
        page = cache.query(sort="elapsed_ms", limit=2)
        assert page.next_cursor is not None
        assert "null" in page.next_cursor
        rest = _walk(
            cache.query,
            ResultQuery(sort="elapsed_ms", limit=2, cursor=page.next_cursor),
        )
        assert len(page.rows) + len(rest) == 8
        first = {r["seq"] for r in page.rows}
        assert first.isdisjoint(r["seq"] for r in rest)


class TestLegacySchemaMigration:
    def test_not_null_elapsed_ms_store_is_rebuilt_in_place(self, tmp_path):
        """A store created by the old NOT NULL schema accepts unmeasured
        records after reopening (the table is rebuilt once on open)."""
        import sqlite3

        from repro.store.sqlite import STORE_NAME

        path = tmp_path / STORE_NAME
        # repro-lint: disable=fork-safety -- forging a legacy-schema store file; never crosses a fork
        conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE results (
                seq        INTEGER PRIMARY KEY AUTOINCREMENT,
                schema     INTEGER NOT NULL,
                key        TEXT    NOT NULL,
                params     TEXT    NOT NULL,
                name       TEXT    NOT NULL DEFAULT '',
                verdict    TEXT    NOT NULL DEFAULT '',
                accepted   TEXT    NOT NULL DEFAULT '',
                exhausted  TEXT,
                elapsed_ms REAL    NOT NULL DEFAULT 0.0,
                entry      TEXT    NOT NULL,
                UNIQUE (schema, key)
            );
            CREATE INDEX results_by_verdict
                ON results (schema, verdict, seq);
            CREATE INDEX results_by_name
                ON results (schema, name, seq);
            """
        )
        conn.close()
        cache = ResultCache(tmp_path, backend="sqlite")
        cache.put("unmeasured", "params", {"name": "u", "data": {}})
        (row,) = cache._backend.rows()
        assert row["elapsed_ms"] is None
        # repro-lint: disable=fork-safety -- single-process schema inspection; never crosses a fork
        info = sqlite3.connect(path).execute(
            "PRAGMA table_info(results)"
        ).fetchall()
        (elapsed,) = [c for c in info if c[1] == "elapsed_ms"]
        assert not elapsed[3]  # notnull flag cleared


class TestMalformedQueries:
    @pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sort": "owner"},
            {"sort": "-owner"},
            {"limit": 0},
            {"limit": -3},
            {"cursor": "not json"},
            {"cursor": "[1]"},
            {"cursor": '["x",1]', "sort": "seq"},
            {"cursor": "[1,2]", "sort": "name"},
            # null cursor values only fit nullable sort fields
            {"cursor": "[null,2]", "sort": "name"},
        ],
    )
    def test_query_error(self, tmp_path, backend, kwargs):
        cache = ResultCache(tmp_path / backend, backend=backend)
        cache.put("k", "p", {"name": "n", "data": {}})
        with pytest.raises(QueryError):
            cache.query(**kwargs)
