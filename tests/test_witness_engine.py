"""Unit tests for the firing-relation witness engine internals."""

from repro.firing.witness import (
    DEFAULT_BUDGET,
    WitnessEngine,
    iter_partitions,
)
from repro.model import parse_dependency


class TestPartitions:
    def test_identity_first(self):
        parts = list(iter_partitions([1, 2, 3]))
        assert parts[0] == [[1], [2], [3]]

    def test_counts_are_bell_numbers(self):
        # Bell numbers: B(1)=1, B(2)=2, B(3)=5, B(4)=15.
        for n, bell in [(1, 1), (2, 2), (3, 5), (4, 15)]:
            assert len(list(iter_partitions(list(range(n))))) == bell

    def test_limit_returns_identity_only(self):
        parts = list(iter_partitions(list(range(10)), limit_vars=4))
        assert len(parts) == 1

    def test_empty(self):
        assert list(iter_partitions([])) == [[]]


class TestWitnessShapes:
    def test_witness_carries_instances(self):
        r1 = parse_dependency("r1: N(x) -> exists y. E(x, y)")
        r2 = parse_dependency("r2: E(x, y) -> N(y)")
        decision = WitnessEngine(r1, r2).precedes()
        assert decision.edge and decision.exact
        w = decision.witness
        assert w is not None
        # h2's instantiated body sits in J but not fully in K.
        inst_body = [a.apply(w.h2) for a in w.r2.rename_variables("2").body]
        assert all(a in w.J for a in inst_body)
        assert not all(a in w.K for a in inst_body)

    def test_budget_exhaustion_is_conservative(self):
        r1 = parse_dependency("r1: A(x) & B(y) -> exists z. R(x, y, z)")
        r2 = parse_dependency("r2: R(x, y, z) & R(y, x, w) -> A(w)")
        decision = WitnessEngine(r1, r2, budget=5).precedes()
        # With a tiny budget the engine must answer True/inexact, never a
        # confident False.
        assert decision.edge and not decision.exact

    def test_self_loop_renaming(self):
        # Self-pairs must not leak shared variable bindings.
        r = parse_dependency("r: E(x, y) & E(y, z) -> E(x, z)")
        assert WitnessEngine(r, r).precedes().edge

    def test_egd_cannot_fire_via_failing_step(self):
        # An EGD whose only violations equate two constants yields ⊥, and
        # a failing step cannot witness an edge.  With nulls available the
        # engine freezes with nulls, so this EGD still fires things — the
        # check here is that the engine stays exact on a tiny budget-free
        # case rather than crashing.
        egd = parse_dependency("e: P(x, y) -> x = y")
        r = parse_dependency("r: P(x, x) -> Q(x)")
        decision = WitnessEngine(egd, r).fires()
        assert decision.edge  # merge P(a,η)→P(a,a) enables the body

    def test_full_target_skips_defusal(self):
        r1 = parse_dependency("r1: N(x) -> exists y. E(x, y)")
        full = parse_dependency("r2: E(x, y) -> N(y)")
        # Even with defusing candidates around, a full target keeps the
        # edge (condition (iv) applies only to existential targets).
        fulls = [full, parse_dependency("r3: E(x, y) -> E(y, x)")]
        assert WitnessEngine(r1, full, fulls).fires().edge

    def test_oblivious_variant_relaxes_applicability(self):
        r = parse_dependency("r: E(x, y) -> exists z. E(x, z)")
        assert not WitnessEngine(r, r, step_variant="standard").precedes().edge
        assert WitnessEngine(r, r, step_variant="oblivious").precedes().edge


class TestDefusalSemantics:
    def test_vacuous_defusal(self):
        """Example 11's core: the defusing step's result need not contain
        the trigger at all."""
        r1 = parse_dependency("r1: N(x) -> exists y. E(x, y)")
        r2 = parse_dependency("r2: E(x, y) -> N(y)")
        r3 = parse_dependency("r3: E(x, y) -> E(y, x)")
        assert WitnessEngine(r2, r1, []).fires().edge  # without the defuser
        assert not WitnessEngine(r2, r1, [r2, r3]).fires().edge

    def test_saturation_neutralises_full_tgd_defusers(self):
        # An unrelated full TGD can always be pre-satisfied in K, so it
        # must NOT defuse on its own.
        r2 = parse_dependency("r2: P(x) & E(x, y) -> N(y)")
        r1 = parse_dependency("r1: N(x) -> exists y. E(x, y)")
        unrelated = parse_dependency("r3: P(x) -> Q(x)")
        assert WitnessEngine(r2, r1, [r2, unrelated]).fires().edge

    def test_egd_defuser_kills(self):
        # Σ1's analysis: the EGD always applies to the witness's E-atom.
        r2 = parse_dependency("r2: E(x, y) -> N(y)")
        r1 = parse_dependency("r1: N(x) -> exists y. E(x, y)")
        egd = parse_dependency("r3: E(x, y) -> x = y")
        assert not WitnessEngine(r2, r1, [r2, egd]).fires().edge


class TestSnapshotBackendDifferential:
    """Savepoint-scoped enumeration vs the copy-backed reference: both run
    the same search and charge the budget at the same points, so decisions
    — edge, exactness, and the witness instances — must be byte-identical.
    """

    @staticmethod
    def _decide_both(r1, r2, fulls, variant, budget=50_000):
        d_sp = WitnessEngine(r1, r2, tuple(fulls), variant, budget, "savepoint").fires()
        d_cp = WitnessEngine(r1, r2, tuple(fulls), variant, budget, "copy").fires()
        assert d_sp.edge == d_cp.edge
        assert d_sp.exact == d_cp.exact
        assert (d_sp.witness is None) == (d_cp.witness is None)
        if d_sp.witness is not None:
            assert d_sp.witness.K.facts() == d_cp.witness.K.facts()
            assert d_sp.witness.J.facts() == d_cp.witness.J.facts()
            assert d_sp.witness.h1 == d_cp.witness.h1
            assert d_sp.witness.h2 == d_cp.witness.h2
        return d_sp

    def test_differential_on_random_programs(self):
        from repro.generators.random_deps import random_dependency_set

        pairs = 0
        for seed in range(25):
            sigma = list(random_dependency_set(seed))
            fulls = [d for d in sigma if d.is_full]
            for r1 in sigma[:3]:
                for r2 in sigma[:3]:
                    for variant in ("standard", "oblivious"):
                        self._decide_both(r1, r2, fulls, variant)
                        pairs += 1
        assert pairs > 100

    def test_differential_with_defusal_saturation(self):
        # A pair whose witness only survives after the full-TGD defuser is
        # saturated away — exercises the savepoint-scoped defuser probes.
        r1 = parse_dependency("r1: A(x) -> exists z. B(x, z)")
        r2 = parse_dependency("r2: B(x, y) -> exists w. C(y, w)")
        full = parse_dependency("r3: B(x, y) -> D(y)")
        decision = self._decide_both(r1, r2, [full], "standard")
        assert decision.edge

    def test_differential_exhausted_budget(self):
        # A tiny budget exhausts mid-search: both backends must stop at
        # the same point and report the same inexact over-approximation.
        r1 = parse_dependency("r1: E(x, y) & E(y, z) -> exists w. E(z, w)")
        r2 = parse_dependency("r2: E(x, y) & E(y, x) -> exists v. E(x, v)")
        decision = self._decide_both(r1, r2, [], "standard", budget=40)
        assert not decision.exact

    def test_unknown_backend_rejected(self):
        import pytest

        r1 = parse_dependency("r1: A(x) -> B(x)")
        with pytest.raises(ValueError):
            WitnessEngine(r1, r1, snapshots="fork")
