"""Crash injection for the result/artifact store (DESIGN.md §7).

The contract under test is the acknowledged-write guarantee of
``ResultCache.put`` / ``ArtifactStore.put``: once ``put`` returns, the
record survives a ``SIGKILL`` of the writer — a committed sqlite
transaction under WAL + ``synchronous=NORMAL``, a flushed-and-fsynced
JSONL line.  The harness runs real writer subprocesses that acknowledge
each durable write into a separately fsynced ack file, kills them with
``SIGKILL`` at an arbitrary instant, and then reopens the store in this
process: every acknowledged record must be readable, and the store must
not be corrupted.

The torn-file tests go below the process-crash model and damage the
files directly (a truncated ``-wal``, a truncated main database, a torn
JSONL tail): sqlite must either recover a clean committed prefix or
refuse the file with :class:`StoreCorruptionError` pointing at the
documented JSONL-restore route — never serve garbage.
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import subprocess
import sys
import textwrap
import time

import pytest

from repro.batch import ArtifactStore, ResultCache
from repro.store import StoreCorruptionError, export_jsonl, import_jsonl

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

PAYLOAD = {"pad": "x" * 200}


@pytest.fixture(params=["sqlite", "jsonl"])
def backend(request):
    return request.param


# Writers acknowledge each put into an fsynced side file: a key listed
# there was *returned from put* before the kill, so it must survive.
RESULT_WRITER = textwrap.dedent(
    """
    import os, sys
    sys.path.insert(0, sys.argv[1])
    from repro.batch.cache import ResultCache
    cache_dir, ack_path, backend = sys.argv[2:5]
    cache = ResultCache(cache_dir, backend=backend)
    ack = open(ack_path, "a", encoding="utf-8")
    i = 0
    while True:
        key = "k%06d" % i
        cache.put(key, "params", {"i": i, "pad": "x" * 200})
        ack.write(key + "\\n")
        ack.flush()
        os.fsync(ack.fileno())
        i += 1
    """
)

ARTIFACT_WRITER = textwrap.dedent(
    """
    import os, sys
    sys.path.insert(0, sys.argv[1])
    from repro.batch.artifacts import ArtifactStore
    cache_dir, ack_path, backend = sys.argv[2:5]
    store = ArtifactStore(cache_dir, backend=backend)
    ack = open(ack_path, "a", encoding="utf-8")
    i = 0
    while True:
        key = "k%06d" % i
        store.put(key, [{"kind": "precedes", "r1": "c%d" % i, "r2": "d%d" % i,
                         "variant": "standard", "budget": 1,
                         "edge": bool(i % 2), "exact": True}])
        ack.write(key + "\\n")
        ack.flush()
        os.fsync(ack.fileno())
        i += 1
    """
)


def _kill_after_acks(script: str, tmp_path, backend: str,
                     want: int = 25, timeout: float = 60.0) -> list[str]:
    """Run a writer subprocess, SIGKILL it once ``want`` writes are
    acknowledged, and return the acknowledged keys."""
    ack = tmp_path / "acked.txt"
    ack.touch()
    proc = subprocess.Popen(
        [sys.executable, "-c", script, SRC, str(tmp_path), str(ack), backend],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + timeout
    try:
        while len(ack.read_text().splitlines()) < want:
            if proc.poll() is not None:
                raise AssertionError(
                    "writer died early: "
                    + proc.communicate()[1].decode(errors="replace")
                )
            if time.monotonic() > deadline:
                raise AssertionError("writer made no progress")
            time.sleep(0.005)
    finally:
        if proc.poll() is None:
            proc.kill()  # SIGKILL — no cleanup, no atexit, no close()
        proc.wait()
    # Only newline-terminated ack lines count: a torn final ack means the
    # put *was* durable but the acknowledgement never completed — fine to
    # under-count, never to over-count.
    text = ack.read_text()
    complete = text[: text.rfind("\n") + 1] if "\n" in text else ""
    return complete.splitlines()


class TestKilledWriter:
    def test_acknowledged_results_survive(self, tmp_path, backend):
        acked = _kill_after_acks(RESULT_WRITER, tmp_path, backend)
        assert len(acked) >= 25
        cache = ResultCache(tmp_path, backend=backend)
        for key in acked:
            i = int(key[1:])
            assert cache.get(key, "params") == {"i": i, "pad": "x" * 200}, (
                f"acknowledged record {key} lost after SIGKILL"
            )
        if backend == "sqlite":
            assert cache._backend.integrity() == "ok"
        else:
            # At most the one torn, *unacknowledged* tail line.
            assert cache.stats.corrupted <= 1

    def test_acknowledged_artifacts_survive(self, tmp_path, backend):
        acked = _kill_after_acks(ARTIFACT_WRITER, tmp_path, backend)
        assert len(acked) >= 25
        store = ArtifactStore(tmp_path, backend=backend)
        for key in acked:
            i = int(key[1:])
            assert store.get(key) == [
                {"kind": "precedes", "r1": f"c{i}", "r2": f"d{i}",
                 "variant": "standard", "budget": 1,
                 "edge": bool(i % 2), "exact": True}
            ], f"acknowledged artifact batch {key} lost after SIGKILL"


# A writer that exits without closing: the WAL is never checkpointed, so
# every committed record lives only in ``store.sqlite-wal`` — the state a
# crashed machine reboots into.
WAL_WRITER = textwrap.dedent(
    """
    import os, sys
    sys.path.insert(0, sys.argv[1])
    from repro.batch.cache import ResultCache
    cache = ResultCache(sys.argv[2])
    for i in range(int(sys.argv[3])):
        cache.put("k%06d" % i, "params", {"i": i, "pad": "y" * 120})
    os._exit(0)
    """
)


class TestTornFiles:
    def test_truncated_wal_recovers_a_committed_prefix(self, tmp_path):
        subprocess.run(
            [sys.executable, "-c", WAL_WRITER, SRC, str(tmp_path), "120"],
            check=True,
        )
        wal = tmp_path / "store.sqlite-wal"
        assert wal.exists() and wal.stat().st_size > 0
        # Tear the log mid-frame (a torn sector write during power loss)
        # and drop the shared-memory index, as a reboot would.
        with wal.open("r+b") as fh:
            fh.truncate(wal.stat().st_size // 2 + 37)
        shm = tmp_path / "store.sqlite-shm"
        if shm.exists():
            shm.unlink()
        cache = ResultCache(tmp_path)
        assert cache._backend.integrity() == "ok"
        n = cache.stats.loaded
        assert 0 < n < 120  # the torn tail was dropped, cleanly
        for i in range(n):
            assert cache.get(f"k{i:06d}", "params") == {
                "i": i, "pad": "y" * 120,
            }

    def test_truncated_main_db_is_refused_then_restorable(self, tmp_path):
        cache = ResultCache(tmp_path)
        store = ArtifactStore(tmp_path)
        for i in range(80):
            cache.put(f"k{i:06d}", "params", {"i": i, **PAYLOAD})
        store.put("k000000", [{"kind": "precedes", "r1": "a", "r2": "b",
                               "variant": "standard", "budget": 1,
                               "edge": True, "exact": True}])
        results_text, artifacts_text, _ = export_jsonl(cache, store)
        cache.close()
        store.close()
        db = tmp_path / "store.sqlite"
        with db.open("r+b") as fh:
            fh.truncate(db.stat().st_size // 2)
        # Damage to the main file is beyond WAL recovery: the open must
        # refuse loudly and point at the restore route, not serve junk.
        with pytest.raises(StoreCorruptionError, match="import-jsonl"):
            ResultCache(tmp_path)
        # The documented recovery: rebuild from the JSONL export.
        db.unlink()
        restored = ResultCache(tmp_path)
        restored_store = ArtifactStore(tmp_path)
        report = import_jsonl(
            restored, results_text, restored_store, artifacts_text
        )
        assert report.results == 80
        assert report.artifacts == 1
        for i in range(80):
            assert restored.get(f"k{i:06d}", "params") == {"i": i, **PAYLOAD}

    def test_torn_jsonl_tail_loses_only_the_unacknowledged_record(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path, backend="jsonl")
        for i in range(5):
            cache.put(f"k{i}", "params", {"i": i})
        cache.close()
        path = tmp_path / "results.jsonl"
        # A crash mid-write: the final line stops mid-token, no newline.
        path.write_bytes(
            path.read_bytes() + b'{"schema": 1, "key": "torn", "par'
        )
        reopened = ResultCache(tmp_path, backend="jsonl")
        assert reopened.stats.corrupted == 1
        assert reopened.stats.loaded == 5
        for i in range(5):
            assert reopened.get(f"k{i}", "params") == {"i": i}


class TestDirectoryEntryDurability:
    """Creating a JSONL log must fsync the parent directory.

    ``fsync`` on the file makes its *contents* durable; the directory
    entry naming the file lives in the directory's own metadata, and a
    machine crash between file creation and the directory sync can
    forget the file wholesale — acknowledged records and all.  A process
    kill cannot reproduce that (the kernel keeps the dirent), so these
    tests observe the syscalls instead: the first append to a *fresh*
    log must fsync a directory fd, appends to an existing log must not.
    """

    @staticmethod
    def _record_fsyncs(monkeypatch) -> list[bool]:
        """Arrange for ``synced`` to collect one is-a-directory flag per
        ``os.fsync`` call (the real sync still happens)."""
        import stat

        synced: list[bool] = []
        real = os.fsync

        def recording(fd):
            synced.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real(fd)

        monkeypatch.setattr(os, "fsync", recording)
        return synced

    def test_first_append_to_a_fresh_log_syncs_the_directory(
        self, tmp_path, monkeypatch
    ):
        synced = self._record_fsyncs(monkeypatch)
        cache = ResultCache(tmp_path, backend="jsonl")
        cache.put("k", "params", {"i": 0})
        cache.close()
        assert any(synced), "parent directory never fsynced on file creation"
        assert not all(synced)  # the line itself was fsynced too

    def test_appends_to_an_existing_log_skip_the_directory(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path, backend="jsonl")
        cache.put("k0", "params", {"i": 0})
        cache.close()
        synced = self._record_fsyncs(monkeypatch)
        reopened = ResultCache(tmp_path, backend="jsonl")
        reopened.put("k1", "params", {"i": 1})
        reopened.close()
        assert synced and not any(synced)

    def test_non_durable_mode_never_syncs(self, tmp_path, monkeypatch):
        synced = self._record_fsyncs(monkeypatch)
        cache = ResultCache(tmp_path, backend="jsonl", durable=False)
        cache.put("k", "params", {"i": 0})
        cache.close()
        assert not synced


# An engine run killed mid-batch: the resume must reuse every record the
# dead run acknowledged.  PYTHONHASHSEED is pinned so both subprocesses
# generate the identical corpus.
ENGINE_RUN = textwrap.dedent(
    """
    import json, sys
    sys.path.insert(0, sys.argv[1])
    from repro.batch import BatchConfig, evaluate_corpus
    from repro.generators import generate_corpus
    corpus = generate_corpus(scale=0.1, tests_scale=0.1, max_size=15)
    report = evaluate_corpus(
        corpus,
        BatchConfig(cache_dir=sys.argv[2], chase_steps=300,
                    store=sys.argv[3]),
    )
    print(json.dumps({
        "total": len(corpus),
        "computed": report.computed,
        "hits": report.hits,
        "deduplicated": report.deduplicated,
        "complete": report.complete,
    }))
    """
)


def _stored_results(cache_dir: pathlib.Path, backend: str) -> int:
    """Count stored result records without holding a cache open."""
    if backend == "sqlite":
        db = cache_dir / "store.sqlite"
        if not db.exists():
            return 0
        try:
            # repro-lint: disable=fork-safety -- crash-harness observer counts rows from the parent; never crosses a fork
            with sqlite3.connect(db, timeout=1.0) as conn:
                (n,) = conn.execute("SELECT COUNT(*) FROM results").fetchone()
                return n
        except sqlite3.Error:
            return 0  # table not created yet, or writer holds the lock
    log = cache_dir / "results.jsonl"
    return len(log.read_text().splitlines()) if log.exists() else 0


class TestKilledBatch:
    def test_resume_after_sigkill_mid_batch(self, tmp_path, backend):
        env = {**os.environ, "PYTHONHASHSEED": "0"}
        cmd = [sys.executable, "-c", ENGINE_RUN, SRC, str(tmp_path), backend]
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env
        )
        deadline = time.monotonic() + 120.0
        try:
            while _stored_results(tmp_path, backend) < 2:
                if proc.poll() is not None:
                    raise AssertionError(
                        "batch finished before the kill: "
                        + proc.communicate()[1].decode(errors="replace")
                    )
                if time.monotonic() > deadline:
                    raise AssertionError("batch made no progress")
                time.sleep(0.005)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait()
        acked = _stored_results(tmp_path, backend)
        assert acked >= 2
        # The resume: a fresh process over the same corpus and store.
        done = subprocess.run(cmd, capture_output=True, env=env, timeout=300)
        assert done.returncode == 0, done.stderr.decode(errors="replace")
        report = json.loads(done.stdout)
        assert report["complete"]
        assert report["hits"] >= 2, "acknowledged records were not reused"
        assert report["computed"] < report["total"]
        assert (
            report["computed"] + report["hits"] + report["deduplicated"]
            == report["total"]
        )
