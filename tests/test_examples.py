"""The example scripts must run end-to-end (they are executable docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples should print something"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
