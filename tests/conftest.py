"""Tier-1 suite fixtures: the per-test timeout guard.

Every potentially unbounded analysis in the library now runs under a
resource budget (see repro.budget and DESIGN.md §2), so no test *should*
be able to hang.  This guard turns "should" into "does": any future
unbounded loop fails its test fast with a clear message instead of
wedging CI until the runner-level kill.

SIGALRM-based (main thread only, POSIX only — it degrades to a no-op
where unavailable, and the CI job's ``timeout-minutes`` stays the outer
backstop).  Override per run with ``REPRO_TEST_TIMEOUT`` seconds; 0
disables.
"""

from __future__ import annotations

import os
import signal

import pytest

TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


@pytest.fixture(autouse=True)
def _per_test_timeout():
    if TIMEOUT_S <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_alarm(signum, frame):
        pytest.fail(
            f"test exceeded the {TIMEOUT_S:.0f}s timeout guard — an "
            f"analysis loop is likely missing a budget check",
            pytrace=True,
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, TIMEOUT_S)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
