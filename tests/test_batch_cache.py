"""Cache correctness: hits, misses, invalidation, corruption recovery,
and the cached-equals-fresh differential guarantee."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.batch import (
    SCHEMA_VERSION,
    BatchConfig,
    ResultCache,
    canonical_fingerprint,
    evaluate_corpus,
)
from repro.budget import Cancellation
from repro.generators import generate_corpus, random_isomorph
from repro.io import jsonl_dumps


@pytest.fixture
def small_corpus():
    return generate_corpus(scale=0.03, tests_scale=0.05, max_size=15)


@pytest.fixture(params=["sqlite", "jsonl"])
def backend(request):
    """Cache semantics must hold on both store backends."""
    return request.param


def config(tmp_path, **kwargs) -> BatchConfig:
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("chase_steps", 300)
    return BatchConfig(**kwargs)


def age_schema(cache: ResultCache) -> None:
    """Rewrite every stored entry as if an older engine wrote it."""
    if cache.backend == "jsonl":
        path = cache.path
        aged = []
        for line in path.read_text().splitlines():
            entry = json.loads(line)
            entry["schema"] = SCHEMA_VERSION - 1
            aged.append(jsonl_dumps(entry))
        path.write_text("\n".join(aged) + "\n")
    else:
        import sqlite3

        # repro-lint: disable=fork-safety -- test fixture rewrites schema versions directly; cache handle is closed
        with sqlite3.connect(cache.path) as conn:
            conn.execute("UPDATE results SET schema = ?", (SCHEMA_VERSION - 1,))


class TestCacheBasics:
    def test_hit_and_miss(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        assert cache.get("k1", "p1") is None
        cache.put("k1", "p1", {"answer": 42})
        assert cache.get("k1", "p1") == {"answer": 42}
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        cache.close()
        # A fresh process sees the same entry.
        reread = ResultCache(tmp_path, backend=backend)
        assert reread.stats.loaded == 1
        assert reread.get("k1", "p1") == {"answer": 42}

    def test_params_mismatch_is_a_miss(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        cache.put("k1", "p1", {"answer": 42})
        assert cache.get("k1", "other-params") is None
        assert cache.stats.params_misses == 1

    def test_last_write_wins(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        cache.put("k1", "p1", {"answer": 1})
        cache.put("k1", "p1", {"answer": 2})
        cache.close()
        reread = ResultCache(tmp_path, backend=backend)
        assert reread.get("k1", "p1") == {"answer": 2}
        assert len(reread) == 1

    def test_schema_bump_invalidates(self, tmp_path, backend):
        cache = ResultCache(tmp_path, backend=backend)
        cache.put("k1", "p1", {"answer": 42})
        cache.close()
        age_schema(cache)
        stale = ResultCache(tmp_path, backend=backend)
        assert stale.get("k1", "p1") is None
        assert stale.stats.stale_schema == 1
        assert len(stale) == 0

    def test_corrupted_line_recovery(self, tmp_path):
        # JSONL-specific: line-level damage tolerance of the reference
        # backend (the sqlite equivalents live in tests/test_store_crash.py).
        cache = ResultCache(tmp_path, backend="jsonl")
        cache.put("k1", "p1", {"answer": 1})
        cache.close()
        path = tmp_path / "results.jsonl"
        good = path.read_text()
        # Damage in the middle: garbage, a truncated record (a crashed
        # writer's torn final line), a non-object line — then a good
        # record *after* the damage, which must still load.
        path.write_text(
            good
            + "<<<not json>>>\n"
            + good.strip()[: len(good) // 2] + "\n"
            + "[1, 2, 3]\n"
            + jsonl_dumps(
                {"schema": SCHEMA_VERSION, "key": "k2", "params": "p1",
                 "record": {"answer": 2}}
            )
            + "\n"
        )
        recovered = ResultCache(tmp_path, backend="jsonl")
        assert recovered.stats.corrupted == 3
        assert recovered.get("k1", "p1") == {"answer": 1}
        assert recovered.get("k2", "p1") == {"answer": 2}

    def test_blank_lines_are_not_corruption(self, tmp_path):
        cache = ResultCache(tmp_path, backend="jsonl")
        cache.put("k1", "p1", {"answer": 1})
        cache.close()
        path = tmp_path / "results.jsonl"
        path.write_text("\n" + path.read_text() + "\n\n")
        assert ResultCache(tmp_path, backend="jsonl").stats.corrupted == 0


class TestEngineCaching:
    def test_differential_cached_equals_fresh(self, tmp_path, small_corpus):
        """The load-bearing guarantee: a warm run returns byte-identical
        evaluations to the cold run that populated the cache, and a
        cache-less run agrees on every verdict."""
        cfg = config(tmp_path)
        cold = evaluate_corpus(small_corpus, cfg)
        warm = evaluate_corpus(small_corpus, cfg)
        assert warm.computed == 0
        assert warm.hits + warm.deduplicated == len(small_corpus)
        assert [dataclasses.asdict(e) for e in cold.evaluations()] == [
            dataclasses.asdict(e) for e in warm.evaluations()
        ]
        fresh = evaluate_corpus(
            small_corpus, BatchConfig(chase_steps=cfg.chase_steps)
        )
        verdicts = lambda r: [  # noqa: E731 - local projection
            (e.name, e.semi_acyclic, e.chase_halted, e.adorned_size)
            for e in r.evaluations()
        ]
        assert verdicts(fresh) == verdicts(warm)

    def test_isomorphic_twin_hits(self, tmp_path, small_corpus):
        """A renamed/reordered corpus is served entirely from the cache
        populated by the original — the content-addressing payoff."""
        cfg = config(tmp_path)
        evaluate_corpus(small_corpus, cfg)
        twins = [
            dataclasses.replace(o, sigma=random_isomorph(o.sigma, seed=o.seed))
            for o in small_corpus
        ]
        warm = evaluate_corpus(twins, cfg)
        assert warm.computed == 0

    def test_changed_program_is_recomputed(self, tmp_path, small_corpus):
        cfg = config(tmp_path)
        evaluate_corpus(small_corpus, cfg)
        changed = list(small_corpus)
        grown = changed[0].sigma.relabel()
        extra = generate_corpus(scale=0.03, tests_scale=0.05, max_size=15,
                                seed=999)[0].sigma
        for d in extra:
            grown.add(d)
        changed[0] = dataclasses.replace(changed[0], sigma=grown)
        warm = evaluate_corpus(changed, cfg)
        assert warm.computed == 1

    def test_params_change_recomputes(self, tmp_path, small_corpus):
        evaluate_corpus(small_corpus, config(tmp_path, chase_steps=300))
        other = evaluate_corpus(small_corpus, config(tmp_path, chase_steps=301))
        assert other.computed > 0
        assert other.hits == 0

    def test_no_resume_recomputes_but_refreshes(self, tmp_path, small_corpus):
        cfg = config(tmp_path)
        evaluate_corpus(small_corpus, cfg)
        refresh = evaluate_corpus(
            small_corpus, dataclasses.replace(cfg, resume=False)
        )
        assert refresh.computed > 0 and refresh.hits == 0
        warm = evaluate_corpus(small_corpus, cfg)
        assert warm.computed == 0

    def test_interrupt_then_resume(self, tmp_path, small_corpus):
        """A cancelled run keeps what it finished; the re-run picks up
        exactly the remainder (the resume semantics of DESIGN.md §4)."""
        cancelled = Cancellation()
        cancelled.cancel()
        cfg = config(tmp_path)
        # Pre-tripped token: the drain happens before anything runs.
        nothing = evaluate_corpus(small_corpus, cfg, cancellation=cancelled)
        assert nothing.interrupted and not nothing.complete
        assert nothing.computed == 0
        # Partial progress: evaluate a prefix, then resume the full corpus.
        prefix = evaluate_corpus(small_corpus[:4], cfg)
        assert prefix.computed > 0
        resumed = evaluate_corpus(small_corpus, cfg)
        assert resumed.complete
        assert resumed.computed + resumed.hits + resumed.deduplicated == len(
            small_corpus
        )
        assert resumed.computed <= len(small_corpus) - 4

    def test_pool_honours_pretripped_cancellation(self, tmp_path, small_corpus):
        """Regression: the jobs>1 path used to submit (and compute) work
        even when the cancellation token was already tripped — the token
        was only polled after the first completion."""
        cancelled = Cancellation()
        cancelled.cancel()
        report = evaluate_corpus(
            small_corpus, config(tmp_path, jobs=2), cancellation=cancelled
        )
        assert report.interrupted and report.computed == 0

    def test_exhausted_is_persisted(self, tmp_path, small_corpus):
        """A budget-exhausted verdict must come back from the cache as
        exhausted — a cached rejection is only as trustworthy as its
        budget, and the CLI's exit code 2 depends on seeing it."""
        cfg = config(tmp_path, budget_steps=1)
        cold = evaluate_corpus(small_corpus[:2], cfg)
        warm = evaluate_corpus(small_corpus[:2], cfg)
        assert warm.computed == 0
        assert cold.any_exhausted and warm.any_exhausted
        dims = [r.exhausted["dimension"] for r in warm.results if r.exhausted]
        assert "steps" in dims

    def test_sharding_partitions_and_shares_cache(self, tmp_path, small_corpus):
        cfg = config(tmp_path)
        seen: list[str] = []
        for i in range(3):
            shard = evaluate_corpus(
                small_corpus, dataclasses.replace(cfg, shard=(i, 3))
            )
            assert shard.complete
            seen += [r.name for r in shard.results]
        assert sorted(seen) == sorted(o.name for o in small_corpus)
        full = evaluate_corpus(small_corpus, cfg)
        assert full.computed == 0

    def test_pool_agrees_with_inline(self, tmp_path, small_corpus):
        inline = evaluate_corpus(small_corpus, BatchConfig(chase_steps=300))
        pooled = evaluate_corpus(
            small_corpus,
            config(tmp_path, jobs=2),
        )
        project = lambda r: [  # noqa: E731 - local projection
            (e.name, e.semi_acyclic, e.chase_halted, e.adorned_size)
            for e in r.evaluations()
        ]
        assert project(inline) == project(pooled)

    def test_classify_mode_round_trip(self, tmp_path, small_corpus):
        cfg = config(tmp_path, mode="classify", criteria=["WA", "SC", "SwA"])
        cold = evaluate_corpus(small_corpus[:4], cfg)
        warm = evaluate_corpus(small_corpus[:4], cfg)
        assert warm.computed == 0
        assert [r.record["data"] for r in cold.results] == [
            r.record["data"] for r in warm.results
        ]
        with pytest.raises(ValueError):
            warm.evaluations()


class TestFingerprintKeying:
    def test_key_is_the_fingerprint(self, tmp_path, small_corpus):
        cfg = config(tmp_path)
        report = evaluate_corpus(small_corpus[:1], cfg)
        assert report.results[0].key == canonical_fingerprint(
            small_corpus[0].sigma
        )
