"""White-box tests for Adn∃ internals: coherent bodies, HeadAdn, θ
matching, Ω(AD) cyclicity, and the EGD chase step over Dµ."""

from repro.core.adornment import (
    BOUND,
    AdornmentAlgorithm,
    AdornmentDefinition,
    encode_predicate,
)
from repro.data import sigma_1
from repro.model import Variable, parse_dependencies

x, y = Variable("x"), Variable("y")


def fresh_algo(text=None):
    sigma = sigma_1() if text is None else parse_dependencies(text)
    algo = AdornmentAlgorithm(sigma)
    algo._init_bridges()
    return algo


class TestCoherentBodies:
    def test_all_b_first(self):
        algo = fresh_algo()
        r2 = algo.sigma[1]  # E(x, y) -> N(y)
        bodies = list(algo._coherent_bodies(r2, algo._adorned_predicates()))
        assert bodies, "the bridge's E^bb must be available"
        first_body, binding = bodies[0]
        assert first_body[0].predicate == encode_predicate("E", (BOUND, BOUND))
        assert binding == {x: BOUND, y: BOUND}

    def test_incoherent_rejected(self):
        # Body P(x) & Q(x) with P^b and Q^f1 available only: no coherent
        # mixed version exists for the shared variable x.
        algo = fresh_algo(
            """
            r1: S(x) -> exists y. Q(y)
            r2: P(x) & Q(x) -> T(x)
            """
        )
        # Manually give the pool a Q^f1 (as the algorithm would after
        # adorning r1) and check r2's coherent bodies never mix b/f1 on x.
        algo.run()
        pool = algo._adorned_predicates()
        r2 = algo.sigma[1]
        for body, binding in algo._coherent_bodies(r2, pool):
            symbols = {binding[v] for v in (x,) if v in binding}
            assert len(symbols) <= 1

    def test_constants_require_bound(self):
        algo = fresh_algo('r1: P(x) -> Q(x)\nr2: Q("c") -> T("c")')
        pool = algo._adorned_predicates()
        r2 = algo.sigma[1]
        for body, _ in algo._coherent_bodies(r2, pool):
            # The constant position must be adorned b.
            assert body[0].predicate.endswith("b")


class TestHeadAdorn:
    def test_existential_gets_fresh_symbol(self):
        algo = fresh_algo()
        r1 = algo.sigma[0]
        defs: list[AdornmentDefinition] = []
        head = algo._head_adorn(r1, {x: BOUND}, defs)
        assert head is not None
        assert head[0].predicate == encode_predicate("E", (BOUND, 1))
        assert len(defs) == 1 and defs[0].symbol == 1
        assert defs[0].args == (BOUND,)

    def test_existing_definition_reused(self):
        algo = fresh_algo()
        r1 = algo.sigma[0]
        defs: list[AdornmentDefinition] = []
        algo._head_adorn(r1, {x: BOUND}, defs)
        algo.definitions.extend(defs)
        again: list[AdornmentDefinition] = []
        head = algo._head_adorn(r1, {x: BOUND}, again)
        assert not again  # reused f1, no new definition
        assert head[0].predicate == encode_predicate("E", (BOUND, 1))

    def test_egd_head_unchanged(self):
        algo = fresh_algo()
        r3 = algo.sigma[2]
        assert algo._head_adorn(r3, {x: BOUND, y: BOUND}, []) is None


class TestThetaMatching:
    def test_match_maps_free_to_free(self):
        algo = fresh_algo()
        theta = algo._match_adornments(
            [(BOUND, 3)], [(BOUND, 1)]
        )
        assert theta == {3: 1}

    def test_mismatch_on_bound(self):
        algo = fresh_algo()
        assert algo._match_adornments([(BOUND, 3)], [(3, BOUND)]) is None

    def test_inconsistent_mapping(self):
        algo = fresh_algo()
        assert algo._match_adornments([(3, 3)], [(1, 2)]) is None

    def test_identity_is_empty_theta(self):
        algo = fresh_algo()
        assert algo._match_adornments([(1, 2)], [(1, 2)]) == {}


class TestOmegaCyclicity:
    def _algo_with_defs(self, defs):
        algo = fresh_algo(
            """
            r1: N(x) -> exists y. E(x, y)
            r2: E(x, y) -> N(y)
            """
        )
        r1 = algo.sigma[0]
        algo.definitions = [
            AdornmentDefinition(sym, r1, r1.existential[0], args)
            for sym, args in defs
        ]
        return algo

    def test_mutual_nesting_is_cyclic(self):
        # f1 = f(f2), f2 = f(f1): a two-cycle with one label.
        algo = self._algo_with_defs([(1, (2,)), (2, (1,))])
        assert algo._is_cyclic_symbol(1)
        assert algo._is_cyclic_symbol(2)

    def test_linear_nesting_not_cyclic(self):
        # f2 = f(f1), f1 = f(b): a path uses the label f^r1_y twice!
        # (f2 → f1 exists only if f1 is defined; the walk f2→f1 has ONE
        # edge; cyclicity needs two same-labelled edges on one walk.)
        algo = self._algo_with_defs([(1, (BOUND,)), (2, (1,))])
        assert not algo._is_cyclic_symbol(2)

    def test_self_nesting_cyclic(self):
        algo = self._algo_with_defs([(1, (1,))])
        assert algo._is_cyclic_symbol(1)

    def test_chain_condition_gates_edges(self):
        # Same definitions, but a Σ where r1 cannot re-fire itself through
        # full dependencies: no Ω edges at all.
        sigma = parse_dependencies(
            """
            r1: N(x) -> exists y. E(x, y)
            r2: P(x) -> P(x)
            """
        )
        algo = AdornmentAlgorithm(sigma)
        algo._init_bridges()
        r1 = sigma[0]
        algo.definitions = [
            AdornmentDefinition(1, r1, r1.existential[0], (2,)),
            AdornmentDefinition(2, r1, r1.existential[0], (1,)),
        ]
        assert not algo._omega_edges()
        assert not algo._is_cyclic_symbol(1)


class TestDMuChaseStep:
    def test_tau_direction_free_to_bound(self):
        algo = fresh_algo()
        result = algo.run()
        # Example 12: the f1/b merge ran, leaving no definitions.
        assert result.definitions == []
        assert result.acyclic
