"""Property-based tests for the firing relations.

The laws here are the structural backbone of Section 5:

* ``<``  ⊆  ``≺``      (the firing graph refines the chase graph);
* edges into full dependencies coincide in both graphs (the defusal
  condition only applies to existentially quantified targets);
* the standard-step relation is contained in the oblivious-step one for
  TGD-only sets (oblivious applicability is weaker).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.firing import FiringOracle, chase_graph, firing_graph
from repro.generators import random_dependency_set

# Any seed draw is safe: the witness engines behind the oracles run under
# per-pair step budgets linked to the ambient analysis budget (see
# repro.budget), so no random program can hang the suite — derandomize
# below only keeps the chosen examples reproducible run-to-run.
SETTINGS = settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


class TestFiringLaws:
    @SETTINGS
    @given(seeds)
    def test_firing_graph_refines_chase_graph(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        oracle = FiringOracle(sigma)
        g = chase_graph(sigma, oracle)
        gf = firing_graph(sigma, oracle)
        assert set(gf.edges()) <= set(g.edges())

    @SETTINGS
    @given(seeds)
    def test_full_targets_agree(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        oracle = FiringOracle(sigma)
        g = chase_graph(sigma, oracle)
        gf = firing_graph(sigma, oracle)
        for r1, r2 in g.edges():
            if r2.is_full:
                assert gf.has_edge(r1, r2), (r1, r2)

    @SETTINGS
    @given(seeds)
    def test_oblivious_contains_standard(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.0)
        std = FiringOracle(sigma, step_variant="standard")
        obl = FiringOracle(sigma, step_variant="oblivious")
        for r1 in sigma:
            for r2 in sigma:
                if std.precedes(r1, r2):
                    assert obl.precedes(r1, r2), (r1, r2)

    @SETTINGS
    @given(seeds)
    def test_decisions_deterministic(self, seed):
        sigma = random_dependency_set(seed, n_deps=3, egd_fraction=0.3)
        a = {(r1, r2): FiringOracle(sigma).fires(r1, r2)
             for r1 in sigma for r2 in sigma}
        b = {(r1, r2): FiringOracle(sigma).fires(r1, r2)
             for r1 in sigma for r2 in sigma}
        assert a == b
