"""Tests for local stratification (LS) and chase provenance."""

import pytest

from repro.chase import run_chase
from repro.chase.provenance import ProvenanceIndex, explain
from repro.criteria import get_criterion
from repro.criteria.local_stratification import is_locally_stratified
from repro.data import db_1, sigma_1, sigma_3, sigma_10
from repro.model import Atom, Constant, parse_dependencies, parse_facts

a = Constant("a")


class TestLocalStratification:
    def test_acyclic_accepted(self):
        assert is_locally_stratified(sigma_3())[0]

    def test_plain_cycle_rejected(self):
        sigma = parse_dependencies(
            "r1: A(x) -> exists y. R(x, y)\nr2: R(x, y) -> A(y)"
        )
        assert not is_locally_stratified(sigma)[0]

    def test_extends_swa_on_splitting_witness(self):
        # The Theorem-11 gain witness: nulls reach R^bf1 whose guard B is
        # only ever bound — the adorned set is acyclic, so LS accepts; SwA
        # accepts it too, while WA does not.  LS must not be worse than AC.
        sigma = parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: R(x, y) & B(y) -> A(y)
            """
        )
        assert is_locally_stratified(sigma)[0]

    def test_neglects_egds(self):
        # Σ1 through the simulation: rejected (the paper's point).
        assert not get_criterion("LS").accepts(sigma_1())
        assert not get_criterion("LS").accepts(sigma_10())

    def test_registered(self):
        result = get_criterion("LS").check(sigma_3())
        assert result.accepted

    def test_egds_rejected_without_simulation(self):
        with pytest.raises(ValueError):
            is_locally_stratified(sigma_1())


class TestProvenance:
    def test_database_facts(self):
        db = db_1()
        result = run_chase(db, sigma_1(), strategy="full_first")
        idx = ProvenanceIndex(db, result)
        d = idx.explain(Atom("N", (a,)))
        assert d.source == "database" and not d.premises

    def test_derived_fact_traces_through_merge(self):
        # E(a,a) was created by r1 as E(a,η1) and rewritten by r3's merge;
        # provenance must still find it and attribute it to r1.
        db = db_1()
        result = run_chase(db, sigma_1(), strategy="full_first")
        d = explain(db, result, Atom("E", (a, a)))
        assert d.source == "r1"
        assert [p.fact for p in d.premises] == [Atom("N", (a,))]
        assert d.premises[0].source == "database"
        assert d.depth() == 2

    def test_multi_step_chain(self):
        sigma = parse_dependencies(
            """
            r1: A(x) -> B(x)
            r2: B(x) -> C(x)
            """
        )
        db = parse_facts('A("a")')
        result = run_chase(db, sigma)
        d = explain(db, result, Atom("C", (a,)))
        assert d.source == "r2"
        assert d.premises[0].source == "r1"
        assert d.premises[0].premises[0].source == "database"

    def test_unknown_fact(self):
        db = db_1()
        result = run_chase(db, sigma_1(), strategy="full_first")
        with pytest.raises(KeyError):
            explain(db, result, Atom("E", (a, Constant("zzz"))))

    def test_render(self):
        db = db_1()
        result = run_chase(db, sigma_1(), strategy="full_first")
        text = explain(db, result, Atom("E", (a, a))).render()
        assert "[r1]" in text and "[database]" in text
