"""EGD-merge bookkeeping: trigger-key rewriting under (chained) merges.

The (semi-)oblivious chase compares triggers through the paper's composed
substitutions ``h_i(x) = h_j(x)γ_j···γ_{i-1}``: every EGD merge γ must
rewrite the recorded fired keys, the pending pool, and — via the delta
log — re-expose rewritten facts to discovery (a merge can enable a
repeated-variable body match such as ``E(x,x)``).
"""

import pytest

from repro.chase import ChaseStatus, run_chase
from repro.chase.runner import ChaseRunner
from repro.chase.step import Substitution
from repro.model import Atom, Constant, Null, parse_dependencies, parse_facts

a, b = Constant("a"), Constant("b")


class TestFiredKeyRewriting:
    @pytest.mark.parametrize("variant", ["oblivious", "semi_oblivious"])
    def test_single_merge_rewrites_fired_keys(self, variant):
        # r1 fires on x=a creating η; the functional EGD merges η into b.
        # The recorded r1 key must survive the merge unchanged (it mentions
        # only a) and the r2 key must be rewritten to mention b, so neither
        # refires: the chase terminates.
        sigma = parse_dependencies(
            """
            r1: P(x) -> exists y. R(x, y)
            r2: R(x, y), R(x, z) -> y = z
            """
        )
        db = parse_facts('P("a") R("a", "b")')
        result = run_chase(db, sigma, variant=variant, strategy="full_first",
                           max_steps=40)
        assert result.status is ChaseStatus.SUCCESS
        assert result.instance.facts() == db.facts()

    @pytest.mark.parametrize("variant", ["oblivious", "semi_oblivious"])
    def test_chained_merges_compose(self, variant):
        # Two existential triggers create η1 and η2; the key EGD first
        # merges η1 into η2 (null-to-null), then a second merge sends η2 to
        # the constant b: keys recorded against η1 must end up at b through
        # the *composition* γ1γ2, not at the dangling η1 or η2.
        sigma = parse_dependencies(
            """
            r1: P(x) -> exists y. R(x, y)
            r2: Q(x) -> exists y. R(x, y)
            r3: R(x, y), R(x, z) -> y = z
            """
        )
        db = parse_facts('P("a") Q("a") R("a", "b")')
        result = run_chase(db, sigma, variant=variant, strategy="lifo",
                           max_steps=60)
        assert result.status is ChaseStatus.SUCCESS
        assert result.instance.facts() == db.facts()

    def test_apply_gamma_rewrites_keys_directly(self):
        # Unit-level: chained γ1 = {η1/η2}, γ2 = {η2/b} over a recorded key.
        sigma = parse_dependencies("r1: P(x) -> exists y. R(x, y)")
        runner = ChaseRunner(parse_facts('P("a")'), sigma, "oblivious")
        dep = sigma[0]
        runner._fired_keys = {(dep, (a, Null(1)))}
        runner._apply_gamma(Substitution(Null(1), Null(2)))
        assert runner._fired_keys == {(dep, (a, Null(2)))}
        runner._apply_gamma(Substitution(Null(2), b))
        assert runner._fired_keys == {(dep, (a, b))}

    def test_apply_gamma_rewrites_pending_triggers(self):
        sigma = parse_dependencies("r1: R(x, y) -> N(y)")
        runner = ChaseRunner(parse_facts('R("a", "b")'), sigma, "oblivious")
        from repro.chase.step import Trigger
        x, y = (v for v in sorted(sigma[0].body_variables(), key=lambda v: v.name))
        runner._pending = [Trigger.make(sigma[0], {x: a, y: Null(5)})]
        runner._seen = set(runner._pending)
        runner._apply_gamma(Substitution(Null(5), b))
        (trigger,) = runner._pending
        assert trigger.mapping() == {x: a, y: b}
        assert runner._seen == {trigger}


class TestMergeEnablesRepeatedVariableBody:
    @pytest.mark.parametrize("variant", ["standard", "oblivious", "semi_oblivious"])
    def test_merge_unlocks_exx_body(self, variant):
        # E(a,η) collapses to E(a,a) under the reflexivising EGD; only then
        # does the body E(x,x) match.  The rewritten fact must re-enter
        # discovery through the delta log.
        sigma = parse_dependencies(
            """
            r1: P(x) -> exists y. E(x, y)
            r2: E(x, y) -> x = y
            r3: E(x, x) -> Q(x)
            """
        )
        db = parse_facts('P("a")')
        result = run_chase(db, sigma, variant=variant, strategy="fifo",
                           max_steps=50)
        assert result.status is ChaseStatus.SUCCESS
        assert Atom("Q", (a,)) in result.instance

    @pytest.mark.parametrize("variant", ["oblivious", "semi_oblivious"])
    def test_chained_merge_unlocks_exx_then_key_survives(self, variant):
        # The merge-enabled Q(a) feeds another existential rule whose
        # trigger key must be recorded post-merge and survive verbatim.
        sigma = parse_dependencies(
            """
            r1: P(x) -> exists y. E(x, y)
            r2: E(x, y) -> x = y
            r3: E(x, x) -> Q(x)
            r4: Q(x) -> exists y. S(x, y)
            r5: S(x, y) -> x = y
            """
        )
        db = parse_facts('P("a")')
        result = run_chase(db, sigma, variant=variant, strategy="fifo",
                           max_steps=80)
        assert result.status is ChaseStatus.SUCCESS
        assert Atom("S", (a, a)) in result.instance
        assert result.instance.is_database  # every null merged away

    def test_exx_match_counts_one_step_per_variant_key(self):
        # Semi-oblivious keys r3 on its frontier {x}: the E(a,a) match may
        # fire only once even though discovery re-finds it after the merge.
        sigma = parse_dependencies(
            """
            r1: P(x) -> exists y. E(x, y)
            r2: E(x, y) -> x = y
            r3: E(x, x) -> Q(x)
            """
        )
        db = parse_facts('P("a")')
        result = run_chase(db, sigma, variant="semi_oblivious",
                           strategy="fifo", max_steps=50)
        fired_r3 = [s for s in result.steps
                    if s.trigger.dependency.label == "r3"]
        assert len(fired_r3) == 1
