"""Adn∃ algorithm tests (Section 6, Algorithm 1, Examples 12 and 13)."""

import pytest

from repro.core import (
    AdnResult,
    AdornmentAlgorithm,
    adn_exists,
    decode_predicate,
    encode_predicate,
    is_semi_acyclic,
    strip_adornments_dep,
    strip_adornments_instance,
)
from repro.core.adornment import BOUND
from repro.data import sigma_1, sigma_3, sigma_8, sigma_10, sigma_11
from repro.model import Atom, Constant, Instance, Null, parse_dependencies


class TestEncoding:
    def test_roundtrip(self):
        name = encode_predicate("E", (BOUND, 1, 12))
        assert name == "E^bf1f12"
        assert decode_predicate(name) == ("E", (BOUND, 1, 12))

    def test_unadorned(self):
        assert decode_predicate("E") is None

    def test_empty_adornment(self):
        name = encode_predicate("P", ())
        assert decode_predicate(name) == ("P", ())


class TestExample12:
    """The paper's full trace of Adn∃ on Σ1."""

    def test_acyclic_true(self):
        assert adn_exists(sigma_1()).acyclic
        assert is_semi_acyclic(sigma_1())

    def test_final_adorned_set(self):
        result = adn_exists(sigma_1())
        rendered = {str(r.dep) for r in result.records if r.src is not None}
        # After τ = {f1/b}: s3, s4, s'5 (plus the EGD s6 collapses into s3).
        assert "E^bb(x, y) → x = y" in rendered
        assert "E^bb(x, y) → N^b(y)" in rendered
        assert "N^b(x) → ∃y E^bb(x, y)" in rendered
        # No free symbols survive anywhere.
        assert not any("f" in str(r.dep).split("(")[0] for r in result.records)

    def test_definitions_emptied_by_tau(self):
        # The chase step over Dµ deletes f1's definition (line 10).
        result = adn_exists(sigma_1())
        assert result.definitions == []

    def test_bridge_dependencies_present(self):
        result = adn_exists(sigma_1())
        bridges = [r for r in result.records if r.is_bridge]
        assert len(bridges) == 2  # N and E


class TestExample13:
    """Adn∃ on Σ10 detects the cyclic adornment."""

    def test_acyclic_false(self):
        result = adn_exists(sigma_10())
        assert not result.acyclic
        assert not is_semi_acyclic(sigma_10())

    def test_nested_definitions_detected(self):
        result = adn_exists(sigma_10())
        # A definition whose argument is itself a defined symbol must
        # exist (the f1/f3 nesting of the paper's trace).
        defined = {d.symbol for d in result.definitions}
        nested = [
            d for d in result.definitions
            if any(isinstance(a, int) and a in defined for a in d.args)
        ]
        assert nested


class TestDMu:
    def test_d_mu_terms(self):
        algo = AdornmentAlgorithm(sigma_1())
        algo._init_bridges()
        d_mu = algo.d_mu()
        # Initially only the all-b facts from the bridges.
        assert d_mu.facts() == {
            Atom("N", (Constant(BOUND),)),
            Atom("E", (Constant(BOUND), Constant(BOUND))),
        }


class TestOtherSets:
    def test_sigma3_accepted(self):
        assert adn_exists(sigma_3()).acyclic

    def test_sigma8_accepted(self):
        # Σ8 ∈ CTstd∀; the direct EGD analysis sees the merges.
        assert adn_exists(sigma_8()).acyclic

    def test_sigma11_accepted(self):
        assert adn_exists(sigma_11()).acyclic

    def test_plain_cycle_rejected(self):
        sigma = parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: R(x, y) -> A(y)
            """
        )
        assert not adn_exists(sigma).acyclic

    def test_result_unpacks_like_paper_pair(self):
        result = adn_exists(sigma_3())
        mu, acyc = result
        assert acyc is True and len(mu) == result.stats["size_adorned"]
        assert result[1] is True


class TestStripAdornments:
    def test_strip_dep(self):
        result = adn_exists(sigma_1())
        for rec in result.records:
            if rec.src is not None:
                assert strip_adornments_dep(rec.dep) == rec.src

    def test_strip_instance(self):
        inst = Instance([Atom("E^bf1", (Constant("a"), Null(1)))])
        out = strip_adornments_instance(inst)
        assert out.facts() == {Atom("E", (Constant("a"), Null(1)))}


class TestModes:
    def test_ac_mode_rejects_egds(self):
        with pytest.raises(ValueError):
            AdornmentAlgorithm(sigma_1(), mode="ac")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            AdornmentAlgorithm(sigma_3(), mode="nope")

    def test_caps_flag_inexact(self):
        sigma = parse_dependencies(
            """
            r1: A(x) -> exists y. R(x, y)
            r2: R(x, y) -> A(y)
            """
        )
        result = adn_exists(sigma, max_records=6)
        assert not result.acyclic
        assert not result.exact
