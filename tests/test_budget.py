"""Unit tests for the budget/cancellation subsystem (repro.budget)."""

import time

from repro.budget import (
    _CLOCK_STRIDE,
    Budget,
    BudgetExhausted,
    Cancellation,
    budget_scope,
    coerce_budget,
    current_budget,
)


class TestBudget:
    def test_unlimited_never_exhausts(self):
        b = Budget.unlimited()
        for _ in range(10_000):
            assert b.charge()
        assert b.charge_facts(10_000)
        assert b.ok and b.exact and b.exhausted is None

    def test_step_limit_is_a_verdict_not_an_exception(self):
        b = Budget(max_steps=5)
        assert all(b.charge() for _ in range(5))
        assert not b.charge()  # sixth blows; returns False, never raises
        assert not b.ok
        assert not b.exact
        assert b.exhausted.dimension == "steps"
        assert b.exhausted.limit == 5
        # Exhaustion is permanent.
        assert not b.charge()

    def test_fact_limit(self):
        b = Budget(max_facts=10)
        assert b.charge_facts(10)
        assert not b.charge_facts(1)
        assert b.exhausted.dimension == "facts"

    def test_wall_clock_limit(self):
        b = Budget(max_ms=10)
        time.sleep(0.05)
        # ok forces the clock check regardless of the charge stride.
        assert not b.ok
        assert b.exhausted.dimension == "wall_ms"
        assert not b.charge()

    def test_bulk_charge_observes_wall_clock_within_one_stride(self):
        # Regression: charge(n) used to tick the stride countdown by 1
        # regardless of n, so a loop bulk-charging n=stride units polled
        # the wall clock stride× less often than a unit-charging loop.
        # The countdown must consume n: after one arming charge, a single
        # further charge of a full stride has covered stride units of
        # work and must observe the expired clock.
        b = Budget(max_ms=5.0)
        assert b.charge(_CLOCK_STRIDE)  # first charge always checks; arms countdown
        time.sleep(0.05)
        assert not b.charge(_CLOCK_STRIDE)
        assert b.exhausted.dimension == "wall_ms"

    def test_bulk_charge_facts_observes_cancellation_within_one_stride(self):
        token = Cancellation()
        b = Budget(cancellation=token)
        assert b.charge_facts(_CLOCK_STRIDE)
        token.cancel()
        charges_after_cancel = 0
        while b.charge_facts(_CLOCK_STRIDE):
            charges_after_cancel += 1
        # One stride of work may slip through before the gated check
        # fires; with the old off-by-(n-1) countdown this loop ran
        # _CLOCK_STRIDE iterations (stride² units) before noticing.
        assert charges_after_cancel <= 1
        assert b.exhausted.dimension == "cancelled"

    def test_cancellation_token(self):
        token = Cancellation()
        b = Budget(cancellation=token)
        assert b.ok
        token.cancel()
        assert not b.ok
        assert b.exhausted.dimension == "cancelled"

    def test_cancellation_shared_between_budgets(self):
        token = Cancellation()
        budgets = [Budget(cancellation=token) for _ in range(3)]
        token.cancel()
        assert all(not b.ok for b in budgets)

    def test_child_charges_parent(self):
        parent = Budget(max_steps=10)
        child = parent.child(max_steps=100)
        assert all(child.charge() for _ in range(10))
        assert not child.charge()  # parent blew first
        assert child.exhausted.dimension == "steps"
        assert parent.exhausted is not None

    def test_child_own_limit_leaves_parent_intact(self):
        parent = Budget(max_steps=100)
        child = parent.child(max_steps=3)
        assert all(child.charge() for _ in range(3))
        assert not child.charge()
        assert parent.exact  # parent can still fund other children
        assert parent.child(max_steps=3).charge()

    def test_child_inherits_cancellation(self):
        token = Cancellation()
        parent = Budget(cancellation=token)
        child = parent.child(max_steps=5)
        token.cancel()
        assert not child.ok

    def test_exhausted_str(self):
        b = Budget(max_steps=1)
        b.charge(2)
        assert "steps" in str(b.exhausted)
        assert str(BudgetExhausted("cancelled", 0, None)) == "cancelled"


class TestAmbientScope:
    def test_no_ambient_by_default(self):
        assert current_budget() is None

    def test_scope_installs_and_restores(self):
        b = Budget(max_steps=7)
        with budget_scope(b):
            assert current_budget() is b
            with budget_scope(None):
                assert current_budget() is None
            assert current_budget() is b
        assert current_budget() is None

    def test_coerce_passthrough_and_int(self):
        b = Budget(max_steps=9)
        assert coerce_budget(b) is b
        c = coerce_budget(123)
        assert c.max_steps == 123
        d = coerce_budget(None, default_steps=55)
        assert d.max_steps == 55

    def test_coerce_links_ambient_parent(self):
        ambient = Budget(max_steps=4)
        with budget_scope(ambient):
            c = coerce_budget(1_000_000)
            assert c.parent is ambient
            assert all(c.charge() for _ in range(4))
            assert not c.charge()  # ambient funded only 4 steps
