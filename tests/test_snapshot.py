"""Transactional instances: the savepoint/rollback undo-log protocol.

The heart of this suite is a property-based differential check: random
scripts of ``add``/``discard``/``merge_terms`` interleaved with *nested*
savepoints run against one instance, and every rollback must restore the
exact state a pristine ``copy()`` taken at the savepoint recorded — the
fact set, all three indexes (predicate, position, term), the delta-log
tick and the ``added_since`` tail.  ``copy()`` is thereby the reference
backend the undo log is held against, exactly as DESIGN.md §5 frames it.
"""

from __future__ import annotations

import random

import pytest

from repro.model import Atom, Instance
from repro.model.terms import Constant, Null

a, b, c = Constant("a"), Constant("b"), Constant("c")
PREDS = (("P", 1), ("Q", 2), ("R", 3))


def _terms_pool():
    return [a, b, c] + [Null(i) for i in range(1, 9)]


def random_fact(rng: random.Random) -> Atom:
    pred, arity = rng.choice(PREDS)
    pool = _terms_pool()
    return Atom(pred, tuple(rng.choice(pool) for _ in range(arity)))


def assert_state_equals(inst: Instance, pristine: Instance, tick: int, log: list) -> None:
    """Exact equality of facts, all three indexes, tick and log tail."""
    assert inst._facts == pristine._facts
    assert inst._by_predicate == pristine._by_predicate
    assert inst._by_term == pristine._by_term
    assert inst._by_pos == pristine._by_pos
    assert inst.tick == tick
    assert list(inst._log) == log
    assert list(inst.added_since(0)) == log


class TestSavepointProtocol:
    def test_rollback_restores_add_and_merge(self):
        inst = Instance([Atom("Q", (a, Null(1)))])
        pristine, tick, log = inst.copy(), inst.tick, list(inst._log)
        sp = inst.savepoint()
        inst.add(Atom("P", (b,)))
        inst.merge_terms(Null(1), b)
        inst.discard(Atom("Q", (a, b)))
        inst.rollback(sp)
        assert_state_equals(inst, pristine, tick, log)
        assert not inst.in_transaction

    def test_new_predicate_slots_shrink_back(self):
        inst = Instance()
        pristine = inst.copy()
        sp = inst.savepoint()
        inst.add(Atom("R", (a, b, c)))
        inst.rollback(sp)
        assert_state_equals(inst, pristine, 0, [])
        assert inst._by_pos == {}

    def test_nested_rollback_innermost_first(self):
        inst = Instance([Atom("P", (a,))])
        outer_copy, outer_tick = inst.copy(), inst.tick
        sp1 = inst.savepoint()
        inst.add(Atom("P", (b,)))
        mid_copy, mid_tick = inst.copy(), inst.tick
        sp2 = inst.savepoint()
        inst.add(Atom("P", (c,)))
        inst.rollback(sp2)
        assert inst._facts == mid_copy._facts and inst.tick == mid_tick
        inst.rollback(sp1)
        assert inst._facts == outer_copy._facts and inst.tick == outer_tick

    def test_rollback_to_outer_consumes_inner(self):
        inst = Instance()
        sp1 = inst.savepoint()
        sp2 = inst.savepoint()
        inst.add(Atom("P", (a,)))
        inst.rollback(sp1)
        assert len(inst) == 0 and not inst.in_transaction
        with pytest.raises(ValueError):
            inst.rollback(sp2)

    def test_release_keeps_changes(self):
        inst = Instance()
        sp = inst.savepoint()
        inst.add(Atom("P", (a,)))
        inst.release(sp)
        assert Atom("P", (a,)) in inst
        assert inst._undo is None  # fast path restored

    def test_release_inside_outer_rollback_still_undone(self):
        inst = Instance()
        sp1 = inst.savepoint()
        sp2 = inst.savepoint()
        inst.add(Atom("P", (a,)))
        inst.release(sp2)  # commit into the outer scope...
        inst.rollback(sp1)  # ...which then rolls the whole thing back
        assert len(inst) == 0

    def test_consumed_token_rejected(self):
        inst = Instance()
        sp = inst.savepoint()
        inst.rollback(sp)
        for op in (inst.rollback, inst.release):
            with pytest.raises(ValueError):
                op(sp)

    def test_foreign_token_rejected(self):
        inst, other = Instance(), Instance()
        sp = other.savepoint()
        with pytest.raises(ValueError):
            inst.rollback(sp)

    def test_copy_does_not_inherit_transaction(self):
        inst = Instance()
        inst.savepoint()
        inst.add(Atom("P", (a,)))
        forked = inst.copy()
        assert not forked.in_transaction
        assert forked._undo is None

    def test_merge_terms_relogging_survives_rollback(self):
        # merge_terms is a discard followed by an add; both re-enter the
        # delta log and both must unwind.
        inst = Instance(
            [
                Atom("Q", (Null(1), Null(2))),  # rewrites to a new fact
                Atom("Q", (Null(1), b)),        # collapses into Q(a, b)
                Atom("Q", (a, b)),
            ]
        )
        pristine, tick, log = inst.copy(), inst.tick, list(inst._log)
        sp = inst.savepoint()
        inst.merge_terms(Null(1), a)
        assert len(inst) == 2
        # Only the genuinely new rewrite re-enters the delta log; the
        # collapse into the pre-existing Q(a, b) does not.
        assert list(inst.added_since(tick)) == [Atom("Q", (a, Null(2)))]
        inst.rollback(sp)
        assert_state_equals(inst, pristine, tick, log)


class TestSavepointProperty:
    """Random mutation scripts with nested savepoints vs pristine copies."""

    @pytest.mark.parametrize("seed", range(30))
    def test_random_script(self, seed):
        rng = random.Random(seed)
        inst = Instance(random_fact(rng) for _ in range(rng.randint(0, 12)))
        # Stack of (savepoint, pristine copy, tick, log snapshot).
        stack = []
        for _ in range(rng.randint(20, 120)):
            roll = rng.random()
            if roll < 0.12:
                stack.append(
                    (inst.savepoint(), inst.copy(), inst.tick, list(inst._log))
                )
            elif roll < 0.22 and stack:
                sp, pristine, tick, log = stack.pop()
                if rng.random() < 0.5:
                    inst.rollback(sp)
                    assert_state_equals(inst, pristine, tick, log)
                else:
                    inst.release(sp)
            elif roll < 0.60:
                inst.add(random_fact(rng))
            elif roll < 0.80:
                live = list(inst)
                if live:
                    inst.discard(rng.choice(live))
            else:
                nulls = sorted(inst.nulls(), key=lambda n: n.label)
                if nulls:
                    old = rng.choice(nulls)
                    new = rng.choice([t for t in _terms_pool() if t is not old])
                    inst.merge_terms(old, new)
        while stack:
            sp, pristine, tick, log = stack.pop()
            inst.rollback(sp)
            assert_state_equals(inst, pristine, tick, log)
        assert not inst.in_transaction
        assert inst._undo is None

    @pytest.mark.parametrize("seed", range(10))
    def test_added_since_matches_copy_taken_at_savepoint(self, seed):
        """After a rollback, a consumer that snapshotted the tick at the
        savepoint sees exactly the same delta as against the pristine copy
        (i.e. nothing) — the semi-naive discovery contract."""
        rng = random.Random(1000 + seed)
        inst = Instance(random_fact(rng) for _ in range(8))
        tick = inst.tick
        sp = inst.savepoint()
        for _ in range(25):
            op = rng.random()
            if op < 0.6:
                inst.add(random_fact(rng))
            elif op < 0.8:
                live = list(inst)
                if live:
                    inst.discard(rng.choice(live))
            else:
                nulls = sorted(inst.nulls(), key=lambda n: n.label)
                if nulls:
                    old = rng.choice(nulls)
                    new = rng.choice([t for t in _terms_pool() if t is not old])
                    inst.merge_terms(old, new)
        inst.rollback(sp)
        assert list(inst.added_since(tick)) == []


class TestBorrowingAccessorsAcrossRollback:
    def test_buckets_reflect_rolled_back_state(self):
        """The matching engine's borrowing accessors, re-fetched after a
        rollback, see exactly the pre-savepoint buckets."""
        inst = Instance([Atom("Q", (a, b)), Atom("Q", (a, c))])
        before_pred = set(inst._pred_bucket("Q"))
        before_pos = set(inst._pos_bucket("Q", 0, a))
        sp = inst.savepoint()
        inst.add(Atom("Q", (a, a)))
        inst.discard(Atom("Q", (a, b)))
        inst.rollback(sp)
        assert set(inst._pred_bucket("Q")) == before_pred
        assert set(inst._pos_bucket("Q", 0, a)) == before_pos
        assert inst._pos_bucket("Q", 1, a) == frozenset()

    def test_pos_slots_for_rolled_back_predicate_disappear(self):
        inst = Instance()
        sp = inst.savepoint()
        inst.add(Atom("R", (a, b, c)))
        assert inst._pos_slots("R") is not None
        inst.rollback(sp)
        assert inst._pos_slots("R") is None


class TestInternedIndexes:
    """The position index is keyed by interned term ids (DESIGN.md §9);
    the keys must track the terms' tids exactly and the undo log must
    restore them regardless of how the global tid counter moves."""

    def test_position_index_is_keyed_by_term_ids(self):
        inst = Instance([Atom("Q", (a, b)), Atom("Q", (a, c))])
        slots = inst._by_pos["Q"]
        assert set(slots[0]) == {a.tid}
        assert set(slots[1]) == {b.tid, c.tid}

    @pytest.mark.parametrize("seed", range(10))
    def test_rollback_is_immune_to_tid_counter_churn(self, seed):
        """Interleave throwaway term allocations (each minting a fresh
        tid) with the mutation script: the tid-keyed indexes must still
        restore exactly — rollback depends on term identity, never on
        the counter's position."""
        rng = random.Random(2000 + seed)
        inst = Instance(random_fact(rng) for _ in range(6))
        pristine, tick, log = inst.copy(), inst.tick, list(inst._log)
        sp = inst.savepoint()
        churn = []  # hold references so the weak interner keeps the tids
        for i in range(40):
            churn.append(Null(100_000 + seed * 1000 + i))
            op = rng.random()
            if op < 0.6:
                inst.add(random_fact(rng))
            elif op < 0.8:
                live = list(inst)
                if live:
                    inst.discard(rng.choice(live))
            else:
                nulls = sorted(inst.nulls(), key=lambda n: n.label)
                if nulls:
                    old = rng.choice(nulls)
                    new = rng.choice([t for t in _terms_pool() if t is not old])
                    inst.merge_terms(old, new)
        inst.rollback(sp)
        assert_state_equals(inst, pristine, tick, log)

    @pytest.mark.parametrize("seed", range(10))
    def test_probe_agrees_with_uninterned_scan_after_rollback(self, seed):
        """The tid-keyed probe answers exactly what an uninterned scan
        over the fact set answers, before and after a rollback."""
        rng = random.Random(3000 + seed)
        inst = Instance(random_fact(rng) for _ in range(10))
        sp = inst.savepoint()
        for _ in range(15):
            inst.add(random_fact(rng))
        inst.rollback(sp)
        for pred, arity in PREDS:
            for i in range(arity):
                for t in _terms_pool():
                    scan = {
                        f for f in inst
                        if f.predicate == pred
                        and len(f.args) > i and f.args[i] is t
                    }
                    assert set(inst._pos_bucket(pred, i, t)) == scan


class TestCoreInPlace:
    def test_core_fresh_never_mutates_input(self):
        from repro.homomorphism import core

        inst = Instance([Atom("Q", (a, Null(1))), Atom("Q", (a, b))])
        before = inst.facts()
        result = core(inst)
        assert inst.facts() == before
        assert result is not inst
        assert result.facts() == {Atom("Q", (a, b))}

    def test_core_consuming_mutates_under_savepoint(self):
        from repro.homomorphism import core

        inst = Instance([Atom("Q", (a, Null(1))), Atom("Q", (a, b))])
        pristine, tick, log = inst.copy(), inst.tick, list(inst._log)
        sp = inst.savepoint()
        result = core(inst, fresh=False)
        assert result is inst
        assert inst.facts() == {Atom("Q", (a, b))}
        inst.rollback(sp)
        assert_state_equals(inst, pristine, tick, log)


class TestCoreChaseTransactional:
    def test_failure_leaves_input_untouched(self):
        from repro.chase.core_chase import core_chase_step
        from repro.model import parse_dependencies, parse_facts
        from repro.model.terms import NullFactory

        sigma = parse_dependencies("r: Q(x, y) -> x = y")
        db = parse_facts('Q("a", "b")')
        pristine, tick, log = db.copy(), db.tick, list(db._log)
        assert core_chase_step(db, sigma, NullFactory(start=1)) is None
        assert_state_equals(db, pristine, tick, log)

    def test_step_advances_in_place(self):
        from repro.chase.core_chase import core_chase_step
        from repro.model import parse_dependencies, parse_facts
        from repro.model.terms import NullFactory

        sigma = parse_dependencies("r: N(x) -> exists y. E(x, y)")
        db = parse_facts('N("a")')
        out = core_chase_step(db, sigma, NullFactory(start=1))
        assert out is db  # consumed in place, committed
        assert not db.in_transaction
        assert len(db) == 2


class TestCompactLog:
    def test_clears_log_outside_transaction(self):
        inst = Instance([Atom("P", (a,)), Atom("P", (b,))])
        assert inst.tick == 2
        inst.compact_log()
        assert inst.tick == 0 and list(inst.added_since(0)) == []
        assert len(inst) == 2  # facts and indexes untouched

    def test_rejected_inside_transaction(self):
        inst = Instance()
        sp = inst.savepoint()
        with pytest.raises(RuntimeError):
            inst.compact_log()
        inst.rollback(sp)
        inst.compact_log()  # fine once the scope is closed

    def test_core_chase_does_not_accumulate_log(self):
        from repro.chase import core_chase
        from repro.model import parse_dependencies, parse_facts

        sigma = parse_dependencies(
            """
            r1: N(x) -> exists y. E(x, y)
            r2: E(x, y) -> N(y)
            r3: E(x, y) -> x = y
            """
        )
        result = core_chase(parse_facts('N("a")'), sigma, max_rounds=20)
        assert result.instance is not None
        # Rounds compact the threaded instance's log: it holds at most the
        # final round's additions, not every intermediate ever added.
        assert result.instance.tick == 0
